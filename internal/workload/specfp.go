package workload

import (
	"fmt"
	"math/rand"

	"prescount/internal/ir"
)

// specProfile shapes one synthetic SPECfp benchmark. The counts are the
// paper's Table I characteristics scaled down (functions by ~1/20, modules
// by ~1/8, conflict-relevant instructions by ~1/10) so the whole suite
// compiles in seconds while preserving the relative proportions that drive
// the evaluation: which benchmarks have many small functions (dealII,
// soplex), which have few huge ones (namd), and which are nearly
// conflict-free (sphinx3, lbm).
type specProfile struct {
	name string
	// mods and fns are the module and function counts.
	mods, fns int
	// reles is the target conflict-relevant instruction count for the
	// whole benchmark.
	reles int
	// width is the peak simultaneously-live FP value count of hot
	// functions; widths above the 32-register budget drive the Sp32
	// spill column.
	width int
	// maxDepth is the maximum loop-nest depth.
	maxDepth int
	// hotFrac is the fraction of functions executed at runtime.
	hotFrac float64
	// callFrac is the probability of an external call between expression
	// trees; values living across calls must use callee-saved registers,
	// reproducing the paper's spills-at-1024-registers effect (Sp1k).
	callFrac float64
}

// specProfiles mirrors Table I's eight rows.
var specProfiles = []specProfile{
	{name: "433.milc", mods: 9, fns: 12, reles: 173, width: 12, maxDepth: 2, hotFrac: 0.6, callFrac: 0.1},
	{name: "435.gromacs", mods: 16, fns: 46, reles: 1014, width: 24, maxDepth: 3, hotFrac: 0.5, callFrac: 0.2},
	{name: "444.namd", mods: 2, fns: 5, reles: 901, width: 40, maxDepth: 2, hotFrac: 0.8, callFrac: 0.05},
	{name: "447.dealII", mods: 15, fns: 180, reles: 1919, width: 36, maxDepth: 3, hotFrac: 0.3, callFrac: 0.3},
	{name: "450.soplex", mods: 8, fns: 62, reles: 274, width: 10, maxDepth: 2, hotFrac: 0.4, callFrac: 0.2},
	{name: "453.povray", mods: 12, fns: 77, reles: 1975, width: 34, maxDepth: 3, hotFrac: 0.4, callFrac: 0.3},
	{name: "470.lbm", mods: 1, fns: 2, reles: 67, width: 14, maxDepth: 1, hotFrac: 1.0, callFrac: 0},
	{name: "482.sphinx3", mods: 6, fns: 16, reles: 36, width: 6, maxDepth: 2, hotFrac: 0.5, callFrac: 0.15},
}

// SPECfp generates the synthetic SPECfp suite.
func SPECfp() *Suite {
	s := &Suite{Name: "SPECfp"}
	for _, p := range specProfiles {
		s.Programs = append(s.Programs, genSPECProgram(p))
	}
	return s
}

func genSPECProgram(p specProfile) *Program {
	r := rng("specfp." + p.name)
	prog := &Program{
		Name:     "SPECfp." + p.name,
		Category: p.name,
		Hot:      map[string]bool{},
		MemSize:  1 << 12,
	}
	// Distribute functions over modules and the reles budget over
	// functions. A minority of functions are conflict-irrelevant (pure
	// data movement), reproducing the Figure 1a split.
	fnsPerMod := p.fns / p.mods
	if fnsPerMod == 0 {
		fnsPerMod = 1
	}
	relesLeft := p.reles
	fnIdx := 0
	var firstRelevant string
	hotRelevant := false
	for mi := 0; mi < p.mods; mi++ {
		mod := ir.NewModule(fmt.Sprintf("%s_m%02d", p.name, mi))
		n := fnsPerMod
		if mi == p.mods-1 {
			n = p.fns - fnIdx // remainder into the last module
		}
		for k := 0; k < n; k++ {
			name := fmt.Sprintf("fn%03d", fnIdx)
			irrelevant := r.Float64() < 0.25
			target := 0
			if !irrelevant {
				remainingFns := p.fns - fnIdx
				target = relesLeft / max(1, remainingFns)
				// Skew: some functions concentrate far more conflicts.
				if r.Float64() < 0.2 {
					target *= 3
				}
				if target > relesLeft {
					target = relesLeft
				}
				relesLeft -= target
			}
			f := genSPECFunc(name, r, p, target)
			mod.Add(f)
			if target > 0 && firstRelevant == "" {
				firstRelevant = name
			}
			if r.Float64() < p.hotFrac {
				prog.Hot[name] = true
				if target > 0 {
					hotRelevant = true
				}
			}
			fnIdx++
		}
		prog.Modules = append(prog.Modules, mod)
	}
	// Ensure at least one conflict-relevant function executes so dynamic
	// metrics are nonzero for every benchmark.
	if !hotRelevant && firstRelevant != "" {
		prog.Hot[firstRelevant] = true
	}
	if len(prog.Hot) == 0 {
		prog.Hot[prog.Funcs()[0].Name] = true
	}
	return prog
}

// genSPECFunc builds one function with approximately `target`
// conflict-relevant instructions: a pool of long-lived "coefficient"
// values loaded before the loop nest (live across it, like real stencil
// weights and physics constants — the source of register pressure and of
// multi-site conflict registers), and expression trees over fresh loads
// and those coefficients inside the nest.
func genSPECFunc(name string, r *rand.Rand, p specProfile, target int) *ir.Func {
	b := ir.NewBuilder(name)
	base := b.IConst(0)
	arr := 16 + r.Intn(17) // initialized array size
	initArray(b, base, arr)

	if target == 0 {
		// Conflict-irrelevant: shuffle data around.
		for i := 0; i < 4+r.Intn(8); i++ {
			v := b.FLoad(base, int64(r.Intn(arr)))
			w := b.FMov(v)
			b.FStore(w, base, int64(64+i))
		}
		b.Ret()
		return b.Func()
	}

	// A quarter of the relevant functions are tiny (a handful of conflict
	// sites and narrow expressions), like the paper's many small
	// conflict-relevant tests; these are the units that can end up
	// conflict-free on wide interleavings (Figure 1b).
	width := p.width
	if r.Float64() < 0.25 {
		target = 1 + r.Intn(3)
		width = 2 + r.Intn(2)
	}

	// Long-lived coefficients: loaded once, used throughout the nest.
	// Their count tracks the profile width, creating genuine pressure on
	// tight register files.
	nCoef := width / 2
	if nCoef > target+2 {
		nCoef = target + 2
	}
	if nCoef < 2 {
		nCoef = 2
	}
	coefs := make([]ir.Reg, 0, nCoef)
	for i := 0; i < nCoef; i++ {
		coefs = append(coefs, b.FLoad(base, int64(r.Intn(arr))))
	}

	depth := 1 + r.Intn(p.maxDepth)
	emitted := 0
	var nest func(d int)
	nest = func(d int) {
		if d == 0 {
			// Body: one or more expression trees. Calls are emitted
			// between loop levels, not here: hot inner loops rarely call,
			// but the long-lived coefficients outside them do live across
			// calls (the Sp1k effect).
			for emitted < target {
				emitted += emitExprTree(b, r, base, arr, width, coefs)
				if r.Float64() < 0.3 {
					break // spread the budget across loop levels
				}
			}
			return
		}
		trip := int64(3 + r.Intn(6))
		b.Loop(trip, 1, func(ir.Reg) { nest(d - 1) })
		// Some benchmarks also compute and call between loop levels; the
		// coefficient pool lives across those calls.
		if r.Float64() < p.callFrac {
			b.Call()
		}
		if r.Float64() < 0.3 && emitted < target {
			emitted += emitExprTree(b, r, base, arr, width/2, coefs)
		}
	}
	for emitted < target {
		nest(depth)
		if depth > 1 && r.Float64() < 0.5 {
			depth--
		}
	}
	// Keep every coefficient observable so its live range really spans the
	// nest.
	keep := coefs[0]
	for _, c := range coefs[1:] {
		keep = b.FAdd(keep, c)
		emitted++
	}
	b.FStore(keep, base, 63)
	b.Ret()
	return b.Func()
}

// emitExprTree folds `width` operands — a mix of fresh loads and shared
// coefficients — with random binary ops (plus the occasional FMA), storing
// the result. Shared coefficients participate in many conflict-relevant
// instructions with different partners, which is exactly the multi-site
// pattern a single-instruction heuristic (bcr) cannot model but RCG
// coloring (bpc) can. Returns the number of conflict-relevant instructions
// emitted.
func emitExprTree(b *ir.Builder, r *rand.Rand, base ir.Reg, arr, width int, coefs []ir.Reg) int {
	if width < 2 {
		width = 2
	}
	vals := make([]ir.Reg, 0, width)
	for i := 0; i < width; i++ {
		if len(coefs) > 0 && r.Float64() < 0.4 {
			vals = append(vals, coefs[r.Intn(len(coefs))])
		} else {
			vals = append(vals, b.FLoad(base, int64(r.Intn(arr))))
		}
	}
	count := 0
	for len(vals) > 1 {
		// Pick two (or three for FMA) operands; fold.
		i := r.Intn(len(vals))
		x := vals[i]
		vals = append(vals[:i], vals[i+1:]...)
		j := r.Intn(len(vals))
		y := vals[j]
		var res ir.Reg
		if x == y {
			// The same shared coefficient drawn twice: a self-pair cannot
			// conflict, fold it against a fresh load instead.
			y = b.FLoad(base, int64(r.Intn(arr)))
			vals = append(vals[:j], vals[j+1:]...)
			res = emitBinary(b, r, x, y)
		} else if len(vals) >= 2 && r.Float64() < 0.25 {
			k := (j + 1) % len(vals)
			z := vals[k]
			res = b.FMA(x, y, z)
			// Remove the higher index first to keep the other valid.
			if k > j {
				vals = append(vals[:k], vals[k+1:]...)
				vals = append(vals[:j], vals[j+1:]...)
			} else {
				vals = append(vals[:j], vals[j+1:]...)
				vals = append(vals[:k], vals[k+1:]...)
			}
		} else {
			vals = append(vals[:j], vals[j+1:]...)
			res = emitBinary(b, r, x, y)
		}
		vals = append(vals, res)
		count++
	}
	b.FStore(vals[0], base, int64(64+r.Intn(32)))
	return count
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
