package workload

import (
	"math/rand"

	"prescount/internal/ir"
)

// Random generates a random, well-formed, executable function from a seed:
// straight-line arithmetic over fresh and reused values, optional loops
// with stores, always self-initializing. It is the fuzzing entry point the
// pipeline property tests drive — any function it returns must compile
// under every method and register file without changing semantics.
func Random(seed int64) *ir.Func {
	rng := rand.New(rand.NewSource(seed))
	b := ir.NewBuilder("rand")
	base := b.IConst(0)
	initArray(b, base, 24)

	var fpVals []ir.Reg
	fp := func() ir.Reg {
		if len(fpVals) == 0 || rng.Float64() < 0.35 {
			v := b.FLoad(base, int64(rng.Intn(24)))
			fpVals = append(fpVals, v)
			return v
		}
		return fpVals[rng.Intn(len(fpVals))]
	}
	emit := func() {
		switch rng.Intn(10) {
		case 0, 1:
			fpVals = append(fpVals, b.FAdd(fp(), fp()))
		case 2, 3:
			fpVals = append(fpVals, b.FMul(fp(), fp()))
		case 4:
			fpVals = append(fpVals, b.FSub(fp(), fp()))
		case 5:
			fpVals = append(fpVals, b.FMin(fp(), fp()))
		case 6:
			fpVals = append(fpVals, b.FMax(fp(), fp()))
		case 7:
			fpVals = append(fpVals, b.FMA(fp(), fp(), fp()))
		case 8:
			fpVals = append(fpVals, b.FNeg(fp()))
		case 9:
			b.FStore(fp(), base, int64(32+rng.Intn(16)))
		}
		if rng.Float64() < 0.06 {
			b.Call()
		}
	}
	for i := 0; i < 4+rng.Intn(20); i++ {
		emit()
	}
	loops := rng.Intn(3)
	for l := 0; l < loops; l++ {
		b.Loop(int64(2+rng.Intn(5)), 1, func(ir.Reg) {
			for i := 0; i < 2+rng.Intn(10); i++ {
				emit()
			}
		})
	}
	b.FStore(fp(), base, 60)
	b.Ret()
	return b.Func()
}
