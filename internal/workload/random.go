package workload

import (
	"fmt"
	"math/rand"

	"prescount/internal/ir"
)

// Random generates a random, well-formed, executable function from a seed:
// straight-line arithmetic over fresh and reused values, optional loops
// with stores, always self-initializing. It is the fuzzing entry point the
// pipeline property tests drive — any function it returns must compile
// under every method and register file without changing semantics.
func Random(seed int64) *ir.Func {
	rng := rand.New(rand.NewSource(seed))
	b := ir.NewBuilder("rand")
	base := b.IConst(0)
	initArray(b, base, 24)

	var fpVals []ir.Reg
	fp := func() ir.Reg {
		if len(fpVals) == 0 || rng.Float64() < 0.35 {
			v := b.FLoad(base, int64(rng.Intn(24)))
			fpVals = append(fpVals, v)
			return v
		}
		return fpVals[rng.Intn(len(fpVals))]
	}
	emit := func() {
		switch rng.Intn(10) {
		case 0, 1:
			fpVals = append(fpVals, b.FAdd(fp(), fp()))
		case 2, 3:
			fpVals = append(fpVals, b.FMul(fp(), fp()))
		case 4:
			fpVals = append(fpVals, b.FSub(fp(), fp()))
		case 5:
			fpVals = append(fpVals, b.FMin(fp(), fp()))
		case 6:
			fpVals = append(fpVals, b.FMax(fp(), fp()))
		case 7:
			fpVals = append(fpVals, b.FMA(fp(), fp(), fp()))
		case 8:
			fpVals = append(fpVals, b.FNeg(fp()))
		case 9:
			b.FStore(fp(), base, int64(32+rng.Intn(16)))
		}
		if rng.Float64() < 0.06 {
			b.Call()
		}
	}
	for i := 0; i < 4+rng.Intn(20); i++ {
		emit()
	}
	loops := rng.Intn(3)
	for l := 0; l < loops; l++ {
		b.Loop(int64(2+rng.Intn(5)), 1, func(ir.Reg) {
			for i := 0; i < 2+rng.Intn(10); i++ {
				emit()
			}
		})
	}
	b.FStore(fp(), base, 60)
	b.Ret()
	return b.Func()
}

// RandomSized generates a random, well-formed, executable function with
// roughly size FP instructions — and therefore on the order of size live
// intervals. It is the size knob of the overlap/pressure query-engine
// benchmarks: Random's functions top out at a few dozen intervals, far too
// small to separate an O(n) scan from an O(log n) tree, while RandomSized
// scales the same instruction mix into the thousands. A size of 0 falls
// back to Random(seed). The value-reuse window is capped so intervals keep
// finite lengths yet many of them overlap at once.
func RandomSized(seed int64, size int) *ir.Func {
	if size <= 0 {
		return Random(seed)
	}
	rng := rand.New(rand.NewSource(seed))
	b := ir.NewBuilder(fmt.Sprintf("rand%d", size))
	base := b.IConst(0)
	initArray(b, base, 24)

	var fpVals []ir.Reg
	fp := func() ir.Reg {
		// Fresh loads keep the interval population growing; reuse draws
		// from a sliding window of recent values so live ranges stretch
		// over many instructions without all reaching the function end.
		if len(fpVals) == 0 || rng.Float64() < 0.3 {
			v := b.FLoad(base, int64(rng.Intn(24)))
			fpVals = append(fpVals, v)
			return v
		}
		lo := 0
		if len(fpVals) > 64 {
			lo = len(fpVals) - 64
		}
		return fpVals[lo+rng.Intn(len(fpVals)-lo)]
	}
	emit := func() {
		switch rng.Intn(10) {
		case 0, 1:
			fpVals = append(fpVals, b.FAdd(fp(), fp()))
		case 2, 3:
			fpVals = append(fpVals, b.FMul(fp(), fp()))
		case 4:
			fpVals = append(fpVals, b.FSub(fp(), fp()))
		case 5:
			fpVals = append(fpVals, b.FMin(fp(), fp()))
		case 6:
			fpVals = append(fpVals, b.FMax(fp(), fp()))
		case 7:
			fpVals = append(fpVals, b.FMA(fp(), fp(), fp()))
		case 8:
			fpVals = append(fpVals, b.FNeg(fp()))
		case 9:
			b.FStore(fp(), base, int64(32+rng.Intn(16)))
		}
	}
	straight := size / 2
	for i := 0; i < straight; i++ {
		emit()
	}
	// The remaining budget goes into a few loops so block frequencies (and
	// hence conflict costs) vary like real kernels.
	remaining := size - straight
	for remaining > 0 {
		body := 16 + rng.Intn(48)
		if body > remaining {
			body = remaining
		}
		remaining -= body
		b.Loop(int64(2+rng.Intn(5)), 1, func(ir.Reg) {
			for i := 0; i < body; i++ {
				emit()
			}
		})
	}
	b.FStore(fp(), base, 60)
	b.Ret()
	return b.Func()
}
