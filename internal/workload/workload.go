// Package workload generates the three benchmark suites of the paper's
// evaluation as executable MIR:
//
//   - specfp: a seeded synthetic stand-in for the eight SPECfp benchmarks,
//     with module/function counts and conflict-relevant instruction
//     profiles proportional to the paper's Table I (scaled down; see
//     EXPERIMENTS.md);
//   - cnn: 64 CNN kernels (conv2d+relu, avg-pool2d, max-pool2d,
//     element-wise) with explicit unroll factors, mirroring the paper's
//     manually-unrolled MobileNet kernels;
//   - dsaop: the eight named DSA kernels of Tables VI/VII (reduce, red-ur,
//     shruse, sr-ur, dw-conv2d, tr18987, tr15651, idft), restricted to
//     2-input vector ops as the 2-bank DSA requires.
//
// Every generator is deterministic: the same name always produces the same
// program. All programs are self-contained (they initialize the memory they
// read) so the simulator can execute them and compare pre-/post-allocation
// semantics.
package workload

import (
	"hash/fnv"
	"math/rand"
	"sort"

	"prescount/internal/ir"
)

// Program is one "executable": one or more modules plus execution metadata.
type Program struct {
	// Name identifies the program within its suite.
	Name string
	// Category groups programs for reporting (e.g. "conv2d.relu").
	Category string
	// Modules are the translation units of the program.
	Modules []*ir.Module
	// Hot marks the functions executed at runtime (simulated for dynamic
	// metrics). A nil map means every function runs. This reproduces the
	// paper's observation that dynamic execution covers only a portion of
	// the compiled code.
	Hot map[string]bool
	// MemSize is the data memory the program needs.
	MemSize int
}

// Funcs returns all functions of the program in deterministic order.
func (p *Program) Funcs() []*ir.Func {
	var out []*ir.Func
	for _, m := range p.Modules {
		out = append(out, m.SortedFuncs()...)
	}
	return out
}

// NumFuncs returns the total function count.
func (p *Program) NumFuncs() int {
	n := 0
	for _, m := range p.Modules {
		n += len(m.Funcs)
	}
	return n
}

// IsHot reports whether the named function executes at runtime.
func (p *Program) IsHot(name string) bool {
	if p.Hot == nil {
		return true
	}
	return p.Hot[name]
}

// Suite is a named list of programs.
type Suite struct {
	// Name is the suite name ("SPECfp", "CNN-KERNEL", "DSA-OP").
	Name string
	// Programs in deterministic order.
	Programs []*Program
}

// Categories returns the distinct program categories in sorted order.
func (s *Suite) Categories() []string {
	set := map[string]bool{}
	for _, p := range s.Programs {
		set[p.Category] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// seedFor derives a deterministic RNG seed from a name.
func seedFor(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// rng returns a deterministic generator for the given name.
func rng(name string) *rand.Rand { return rand.New(rand.NewSource(seedFor(name))) }

// initArray emits straight-line stores filling mem[0..n) with a
// deterministic, nonzero pattern. Stores read a single FP register, so the
// init section is conflict-irrelevant and does not distort statistics.
func initArray(b *ir.Builder, base ir.Reg, n int) {
	for i := 0; i < n; i++ {
		v := 1.0 + 0.5*float64(i%7) + 0.125*float64(i%3)
		c := b.FConst(v)
		b.FStore(c, base, int64(i))
	}
}

// binaryOps are the conflict-relevant two-input FP operations the
// generators draw from. Division is included but weighted down and its
// right operand always comes from initialized (nonzero) data.
var binaryOps = []ir.Op{
	ir.OpFAdd, ir.OpFAdd, ir.OpFMul, ir.OpFMul, ir.OpFSub,
	ir.OpFMin, ir.OpFMax, ir.OpFDiv,
}

// emitBinary emits one random two-input operation.
func emitBinary(b *ir.Builder, r *rand.Rand, x, y ir.Reg) ir.Reg {
	op := binaryOps[r.Intn(len(binaryOps))]
	switch op {
	case ir.OpFAdd:
		return b.FAdd(x, y)
	case ir.OpFSub:
		return b.FSub(x, y)
	case ir.OpFMul:
		return b.FMul(x, y)
	case ir.OpFDiv:
		return b.FDiv(x, y)
	case ir.OpFMin:
		return b.FMin(x, y)
	default:
		return b.FMax(x, y)
	}
}
