package workload

import (
	"math"

	"prescount/internal/ir"
)

// DSAOP generates the eight DSA kernels of the paper's Tables VI/VII. The
// DSA's vector ISA reads at most two register operands per instruction (a
// 2-bank file cannot serve three single-ported reads), so these kernels use
// only two-input ops: multiply-accumulate appears as fmul followed by fadd.
//
// The kernels span the splitting-relevant patterns of §III-C:
// reductions (output sharing), shared broadcast operands (input sharing),
// stencils, and the IDFT, which combines both at scale.
func DSAOP() *Suite {
	return &Suite{Name: "DSA-OP", Programs: []*Program{
		reduceKernel("reduce", 5, 8),
		reduceKernel("red-ur", 50, 4),
		sharedUseKernel("shruse", 10, 4),
		sharedUseKernel("sr-ur", 200, 1),
		dwConv2dKernel("dw-conv2d"),
		mixedKernel("tr18987", 25, 7),
		mixedKernel("tr15651", 64, 8),
		idftKernel("idft", 32),
	}}
}

func dsaProgram(name string, f *ir.Func, mem int) *Program {
	return &Program{
		Name:     name,
		Category: name,
		Modules:  []*ir.Module{moduleWith(name, f)},
		MemSize:  mem,
	}
}

// reduceKernel sums an array with `unrolled` adds per loop iteration: the
// output-sharing pattern of Figure 9.
func reduceKernel(name string, unrolled int, trips int64) *Program {
	b := ir.NewBuilder(name)
	base := b.IConst(0)
	initArray(b, base, 64)
	acc := b.FConst(0)
	b.Loop(trips, 1, func(ir.Reg) {
		for u := 0; u < unrolled; u++ {
			x := b.FLoad(base, int64(u%48))
			s := b.FAdd(acc, x)
			b.Assign(acc, s)
		}
	})
	b.FStore(acc, base, 100)
	b.Ret()
	return dsaProgram(name, b.Func(), 1<<10)
}

// sharedUseKernel multiplies one broadcast value with many inputs: the
// input-sharing pattern of Figure 8.
func sharedUseKernel(name string, ops int, trips int64) *Program {
	b := ir.NewBuilder(name)
	base := b.IConst(0)
	initArray(b, base, 64)
	a := b.FLoad(base, 0) // the shared operand
	body := func() {
		for u := 0; u < ops; u++ {
			x := b.FLoad(base, int64(1+u%48))
			p := b.FMul(a, x)
			b.FStore(p, base, int64(100+u%64))
		}
	}
	if trips > 1 {
		b.Loop(trips, 1, func(ir.Reg) { body() })
	} else {
		body()
	}
	b.Ret()
	return dsaProgram(name, b.Func(), 1<<10)
}

// dwConv2dKernel is a 3x3 depthwise convolution: 9 multiply-accumulates per
// output, over an 8-position loop.
func dwConv2dKernel(name string) *Program {
	b := ir.NewBuilder(name)
	base := b.IConst(0)
	initArray(b, base, 64)
	var w [9]ir.Reg
	for i := range w {
		w[i] = b.FLoad(base, int64(i))
	}
	b.Loop(8, 1, func(ir.Reg) {
		acc := b.FConst(0)
		for t := 0; t < 9; t++ {
			x := b.FLoad(base, int64(16+t))
			p := b.FMul(w[t], x)
			acc = b.FAdd(acc, p)
		}
		b.FStore(acc, base, 100)
	})
	b.Ret()
	return dsaProgram(name, b.Func(), 1<<10)
}

// mixedKernel interleaves element-wise chains with partial reductions,
// standing in for the paper's anonymized high-performance kernels
// (tr18987, tr15651).
func mixedKernel(name string, width int, trips int64) *Program {
	b := ir.NewBuilder(name)
	base := b.IConst(0)
	initArray(b, base, 64)
	acc := b.FConst(0)
	b.Loop(trips, 1, func(ir.Reg) {
		var partial []ir.Reg
		for u := 0; u < width; u++ {
			x := b.FLoad(base, int64(u%32))
			y := b.FLoad(base, int64((u+5)%32))
			p := b.FMul(x, y)
			q := b.FMax(p, x)
			partial = append(partial, q)
		}
		// Tree-reduce the partials.
		for len(partial) > 1 {
			var next []ir.Reg
			for i := 0; i+1 < len(partial); i += 2 {
				next = append(next, b.FAdd(partial[i], partial[i+1]))
			}
			if len(partial)%2 == 1 {
				next = append(next, partial[len(partial)-1])
			}
			partial = next
		}
		s := b.FAdd(acc, partial[0])
		b.Assign(acc, s)
	})
	b.FStore(acc, base, 100)
	b.Ret()
	return dsaProgram(name, b.Func(), 1<<10)
}

// idftKernel computes an N-point inverse DFT over precomputed twiddle
// factors, inner loop fully unrolled: per output k, sum over n of
// re[n]*cos(2πkn/N) - im[n]*sin(2πkn/N) (and the imaginary counterpart).
// The twiddles act as broadcastable constants, the double accumulation is
// an output-sharing chain: the combined pattern that makes the paper's
// idft the heaviest subgroup-splitting client (Table VII).
func idftKernel(name string, n int) *Program {
	b := ir.NewBuilder(name)
	base := b.IConst(0)
	// Layout: re at [0, n), im at [n, 2n), out re at [256, 256+n), out im
	// at [320, 320+n).
	initArray(b, base, 2*n)
	invN := b.FConst(1.0 / float64(n))
	for k := 0; k < n; k++ {
		accRe := b.FConst(0)
		accIm := b.FConst(0)
		for j := 0; j < n; j++ {
			angle := 2 * math.Pi * float64(k) * float64(j) / float64(n)
			c := b.FConst(math.Cos(angle))
			s := b.FConst(math.Sin(angle))
			re := b.FLoad(base, int64(j))
			im := b.FLoad(base, int64(n+j))
			// reOut += re*c - im*s ; imOut += re*s + im*c
			t1 := b.FMul(re, c)
			t2 := b.FMul(im, s)
			t3 := b.FSub(t1, t2)
			accRe = b.FAdd(accRe, t3)
			t4 := b.FMul(re, s)
			t5 := b.FMul(im, c)
			t6 := b.FAdd(t4, t5)
			accIm = b.FAdd(accIm, t6)
		}
		outRe := b.FMul(accRe, invN)
		outIm := b.FMul(accIm, invN)
		b.FStore(outRe, base, int64(256+k))
		b.FStore(outIm, base, int64(320+k))
	}
	b.Ret()
	return dsaProgram(name, b.Func(), 1<<10)
}
