package workload

import (
	"testing"

	"prescount/internal/bankfile"
	"prescount/internal/conflict"
	"prescount/internal/ir"
	"prescount/internal/sim"
)

func TestSPECfpShape(t *testing.T) {
	s := SPECfp()
	if len(s.Programs) != 8 {
		t.Fatalf("SPECfp programs = %d, want 8", len(s.Programs))
	}
	names := map[string]bool{}
	totalReles := 0
	for _, p := range s.Programs {
		if names[p.Name] {
			t.Errorf("duplicate program %s", p.Name)
		}
		names[p.Name] = true
		if len(p.Modules) == 0 || p.NumFuncs() == 0 {
			t.Errorf("%s: empty program", p.Name)
		}
		for _, f := range p.Funcs() {
			if err := f.Verify(); err != nil {
				t.Fatalf("%s/%s: %v", p.Name, f.Name, err)
			}
			r := conflict.Analyze(f, bankfile.RV2(2))
			totalReles += r.ConflictRelevant
		}
		if len(p.Hot) == 0 {
			t.Errorf("%s: no hot functions", p.Name)
		}
	}
	// The suite-wide conflict-relevant count should be in the vicinity of
	// the scaled Table I total (~6350, scaled /10).
	if totalReles < 3000 || totalReles > 13000 {
		t.Errorf("SPECfp total conflict-relevant instrs = %d, want 3000..13000", totalReles)
	}
}

func TestSPECfpDeterministic(t *testing.T) {
	a, b := SPECfp(), SPECfp()
	for i := range a.Programs {
		fa, fb := a.Programs[i].Funcs(), b.Programs[i].Funcs()
		if len(fa) != len(fb) {
			t.Fatalf("%s: function count differs", a.Programs[i].Name)
		}
		for j := range fa {
			if ir.Print(fa[j]) != ir.Print(fb[j]) {
				t.Fatalf("%s/%s: nondeterministic generation",
					a.Programs[i].Name, fa[j].Name)
			}
		}
	}
}

func TestSPECfpProportions(t *testing.T) {
	s := SPECfp()
	byName := map[string]int{}
	for _, p := range s.Programs {
		n := 0
		for _, f := range p.Funcs() {
			n += conflict.Analyze(f, bankfile.RV2(2)).ConflictRelevant
		}
		byName[p.Category] = n
	}
	// Table I ordering must be preserved: povray and dealII near the top,
	// sphinx3 and lbm at the bottom.
	if byName["453.povray"] < byName["470.lbm"] ||
		byName["447.dealII"] < byName["482.sphinx3"] {
		t.Errorf("conflict-relevant proportions lost: %v", byName)
	}
	if byName["444.namd"] < 100 {
		t.Errorf("namd too small: %d", byName["444.namd"])
	}
	if byName["444.namd"] < byName["482.sphinx3"] || byName["444.namd"] < byName["470.lbm"] {
		t.Errorf("namd must outweigh the small benchmarks: %v", byName)
	}
}

func TestCNNShape(t *testing.T) {
	s := CNN()
	if len(s.Programs) != 64 {
		t.Fatalf("CNN programs = %d, want 64", len(s.Programs))
	}
	counts := map[string]int{}
	for _, p := range s.Programs {
		counts[p.Category]++
		for _, f := range p.Funcs() {
			if err := f.Verify(); err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
		}
	}
	want := map[string]int{"conv2d.relu": 42, "avg.pool2d": 6, "max.pool2d": 6, "other": 10}
	for c, n := range want {
		if counts[c] != n {
			t.Errorf("category %s = %d, want %d", c, counts[c], n)
		}
	}
}

func TestCNNUnrollRaisesConflictRelevant(t *testing.T) {
	// Within conv kernels, higher unroll factors must yield more
	// conflict-relevant instructions (the paper's pressure knob).
	s := CNN()
	reles := func(p *Program) int {
		n := 0
		for _, f := range p.Funcs() {
			n += conflict.Analyze(f, bankfile.RV1(2)).ConflictRelevant
		}
		return n
	}
	// conv2d.relu.00 (unroll 1) vs conv2d.relu.03 (unroll 8), same k/cin.
	var u1, u8 *Program
	for _, p := range s.Programs {
		switch p.Name {
		case "CNN.conv2d.relu.00":
			u1 = p
		case "CNN.conv2d.relu.03":
			u8 = p
		}
	}
	if u1 == nil || u8 == nil {
		t.Fatal("expected kernels missing")
	}
	if reles(u8) <= reles(u1) {
		t.Errorf("unroll 8 (%d reles) not above unroll 1 (%d)", reles(u8), reles(u1))
	}
}

func TestDSAOPShape(t *testing.T) {
	s := DSAOP()
	want := []string{"reduce", "red-ur", "shruse", "sr-ur", "dw-conv2d", "tr18987", "tr15651", "idft"}
	if len(s.Programs) != len(want) {
		t.Fatalf("DSA programs = %d, want %d", len(s.Programs), len(want))
	}
	for i, p := range s.Programs {
		if p.Name != want[i] {
			t.Errorf("program %d = %s, want %s", i, p.Name, want[i])
		}
		for _, f := range p.Funcs() {
			if err := f.Verify(); err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			// DSA constraint: no 3-read ops.
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op == ir.OpFMA {
						t.Errorf("%s uses fma; DSA kernels must use 2-input ops", p.Name)
					}
				}
			}
		}
	}
	// idft must be the largest kernel (Table VI ordering).
	var idftReles, maxOther int
	for _, p := range s.Programs {
		n := 0
		for _, f := range p.Funcs() {
			n += conflict.Analyze(f, bankfile.DSA(1024)).ConflictRelevant
		}
		if p.Name == "idft" {
			idftReles = n
		} else if n > maxOther {
			maxOther = n
		}
	}
	if idftReles <= maxOther {
		t.Errorf("idft (%d reles) must dominate the suite (max other %d)", idftReles, maxOther)
	}
}

func TestAllProgramsExecute(t *testing.T) {
	suites := []*Suite{SPECfp(), CNN(), DSAOP()}
	for _, s := range suites {
		for _, p := range s.Programs {
			for _, f := range p.Funcs() {
				if !p.IsHot(f.Name) {
					continue
				}
				if _, err := sim.Run(f, sim.Options{MemSize: p.MemSize}); err != nil {
					t.Errorf("%s/%s/%s does not execute: %v", s.Name, p.Name, f.Name, err)
				}
			}
		}
	}
}

func TestIsHotDefaults(t *testing.T) {
	p := &Program{Name: "x"}
	if !p.IsHot("anything") {
		t.Error("nil Hot map must mean everything is hot")
	}
	p.Hot = map[string]bool{"a": true}
	if p.IsHot("b") || !p.IsHot("a") {
		t.Error("Hot map not respected")
	}
}

func TestSuiteCategories(t *testing.T) {
	s := CNN()
	cats := s.Categories()
	if len(cats) != 4 {
		t.Errorf("categories = %v, want 4", cats)
	}
	for i := 1; i < len(cats); i++ {
		if cats[i-1] >= cats[i] {
			t.Error("categories not sorted")
		}
	}
}
