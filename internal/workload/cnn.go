package workload

import (
	"fmt"

	"prescount/internal/ir"
)

// CNN generates the 64-kernel CNN-KERNEL suite: conv2d+relu (42 kernels),
// avg-pool2d (6), max-pool2d (6) and element-wise "other" kernels (10),
// each at an explicit unroll factor. The paper unrolls kernels manually to
// raise bank pressure; the unroll factor here plays the same role: it
// multiplies the number of conflict-relevant instructions per loop body.
func CNN() *Suite {
	s := &Suite{Name: "CNN-KERNEL"}
	idx := 0
	add := func(p *Program) {
		s.Programs = append(s.Programs, p)
		idx++
	}
	// 42 convolution kernels: combinations of kernel size, input channels
	// and unroll factor.
	convCfgs := []struct{ k, cin, unroll int }{}
	for _, k := range []int{1, 3} {
		for _, cin := range []int{4, 8, 16} {
			for _, u := range []int{1, 2, 4, 8} {
				convCfgs = append(convCfgs, struct{ k, cin, unroll int }{k, cin, u})
			}
		}
	}
	// 2*3*4 = 24 so far; add 3x3 with larger channel counts for the rest.
	for _, cin := range []int{24, 32, 48} {
		for _, u := range []int{1, 2, 4, 8, 16, 32} {
			convCfgs = append(convCfgs, struct{ k, cin, unroll int }{3, cin, u})
		}
	}
	for i, c := range convCfgs[:42] {
		add(convKernel(fmt.Sprintf("conv2d.relu.%02d", i), c.k, c.cin, c.unroll))
	}
	// 6 + 6 pooling kernels.
	pi := 0
	for _, k := range []int{2, 3} {
		for _, u := range []int{1, 4, 16} {
			add(poolKernel(fmt.Sprintf("avg.pool2d.%02d", pi), k, u, false))
			pi++
		}
	}
	pi = 0
	for _, k := range []int{2, 3} {
		for _, u := range []int{1, 4, 16} {
			add(poolKernel(fmt.Sprintf("max.pool2d.%02d", pi), k, u, true))
			pi++
		}
	}
	// 10 element-wise kernels.
	for i := 0; i < 10; i++ {
		add(elementwiseKernel(fmt.Sprintf("other.%02d", i), 1+i%4, 1+(i%3)*3))
	}
	return s
}

// convKernel builds a direct convolution with ReLU over a sliding window:
// the unrolled outputs share input pixels (output u reads pixels
// u..u+taps-1), exactly the operand reuse of real convolutions. A pixel
// therefore multiplies against *different* weights in different
// instructions — the multi-site conflict pattern an RCG colors globally
// but a single-instruction heuristic cannot (paper §V on bcr).
func convKernel(name string, k, cin, unroll int) *Program {
	b := ir.NewBuilder(name)
	base := b.IConst(0)
	weights := k * k
	taps := weights * min(cin, 4) // inner extent per output
	initArray(b, base, 64)

	// Weights stay in registers across the loop (live range pressure).
	var w []ir.Reg
	for i := 0; i < weights; i++ {
		w = append(w, b.FLoad(base, int64(i)))
	}
	zero := b.FConst(0)
	b.Loop(8, 1, func(ir.Reg) {
		// One sliding window of pixels shared by all unrolled outputs.
		window := taps + unroll - 1
		pix := make([]ir.Reg, window)
		for i := range pix {
			pix[i] = b.FLoad(base, int64(16+i%48))
		}
		for u := 0; u < unroll; u++ {
			acc := b.FConst(0)
			for t := 0; t < taps; t++ {
				x := pix[u+t]
				// Multiply-accumulate, mostly as separate mul+add (the
				// 2-read form whose conflicts a bank assigner can remove);
				// every fourth tap uses the fused 3-read form, whose
				// conflict is irreducible on a 2-bank file.
				if t%4 == 3 {
					acc = b.FMA(w[t%weights], x, acc)
				} else {
					p := b.FMul(w[t%weights], x)
					acc = b.FAdd(acc, p)
				}
			}
			out := b.FMax(acc, zero) // ReLU
			b.FStore(out, base, int64(100+u))
		}
	})
	b.Ret()
	return &Program{
		Name:     "CNN." + name,
		Category: categoryOf(name),
		Modules:  []*ir.Module{moduleWith(name, b.Func())},
		MemSize:  1 << 10,
	}
}

// poolKernel builds average or max pooling over k*k windows, unrolled.
func poolKernel(name string, k, unroll int, isMax bool) *Program {
	b := ir.NewBuilder(name)
	base := b.IConst(0)
	initArray(b, base, 64)
	inv := b.FConst(1.0 / float64(k*k))
	b.Loop(8, 1, func(ir.Reg) {
		for u := 0; u < unroll; u++ {
			acc := b.FLoad(base, int64(u%32))
			for t := 1; t < k*k; t++ {
				x := b.FLoad(base, int64((u+t)%48))
				if isMax {
					acc = b.FMax(acc, x)
				} else {
					acc = b.FAdd(acc, x)
				}
			}
			if !isMax {
				acc = b.FMul(acc, inv)
			}
			b.FStore(acc, base, int64(100+u))
		}
	})
	b.Ret()
	return &Program{
		Name:     "CNN." + name,
		Category: categoryOf(name),
		Modules:  []*ir.Module{moduleWith(name, b.Func())},
		MemSize:  1 << 10,
	}
}

// elementwiseKernel builds chains of element-wise binary operations
// (activation-style kernels).
func elementwiseKernel(name string, chains, unroll int) *Program {
	b := ir.NewBuilder(name)
	base := b.IConst(0)
	initArray(b, base, 32)
	b.Loop(8, 1, func(ir.Reg) {
		for u := 0; u < unroll; u++ {
			x := b.FLoad(base, int64(u%16))
			y := b.FLoad(base, int64((u+1)%16))
			v := b.FAdd(x, y)
			for c := 0; c < chains; c++ {
				z := b.FLoad(base, int64((u+c+2)%16))
				if c%2 == 0 {
					v = b.FMul(v, z)
				} else {
					v = b.FMax(v, z)
				}
			}
			b.FStore(v, base, int64(100+u))
		}
	})
	b.Ret()
	return &Program{
		Name:     "CNN." + name,
		Category: categoryOf(name),
		Modules:  []*ir.Module{moduleWith(name, b.Func())},
		MemSize:  1 << 10,
	}
}

func categoryOf(name string) string {
	switch {
	case len(name) >= 6 && name[:6] == "conv2d":
		return "conv2d.relu"
	case len(name) >= 10 && name[:10] == "avg.pool2d":
		return "avg.pool2d"
	case len(name) >= 10 && name[:10] == "max.pool2d":
		return "max.pool2d"
	default:
		return "other"
	}
}

func moduleWith(name string, fs ...*ir.Func) *ir.Module {
	m := ir.NewModule(name)
	for _, f := range fs {
		m.Add(f)
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
