package ir

import (
	"strings"
	"testing"
)

// TestParseMalformedReturnsError is the untrusted-input contract of the
// parser: every malformed source in the table returns an error — it never
// panics (the daemon feeds client-supplied bytes straight into Parse) and
// never silently succeeds.
func TestParseMalformedReturnsError(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "", "empty input"},
		{"comment only", "# nothing here\n", "empty input"},
		{"no header", "entry:\n  ret\n", "expected 'func @name {'"},
		{"missing brace", "func @f {\n entry:\n  ret\n", "missing closing brace"},
		{"instr before label", "func @f {\n  ret\n}", "instruction before any label"},
		{"unknown opcode", "func @f {\n entry:\n  frob %1\n}", "unknown opcode"},
		{"unknown class", "func @f {\n entry:\n  %0:vec = fconst 1\n  ret\n}", "unknown class"},
		{"negative vreg def", "func @f {\n entry:\n  %-1:fp = fconst 1\n  ret\n}", "out of range"},
		{"negative vreg use", "func @f {\n entry:\n  %0:fp = fmov %-5\n  ret\n}", "out of range"},
		{"huge vreg", "func @f {\n entry:\n  %9999999:fp = fconst 1\n  ret\n}", "out of range"},
		{"huge fpr", "func @f {\n entry:\n  f2147483000 = fconst 1\n  ret\n}", "bad FP register"},
		{"huge gpr", "func @f {\n entry:\n  x99 = iconst 1\n  ret\n}", "bad GPR"},
		{"negative fpr", "func @f {\n entry:\n  f-1 = fconst 1\n  ret\n}", "bad FP register"},
		{"bad operand", "func @f {\n entry:\n  %0:fp = fmov banana\n  ret\n}", "bad register operand"},
		{"missing operand", "func @f {\n entry:\n  %0:fp = fadd %1\n  ret\n}", "need at least"},
		{"extra operand", "func @f {\n entry:\n  %0:fp = fmov %1, %2, %3\n  ret\n}", "extra operands"},
		{"missing imm", "func @f {\n entry:\n  %0:gpr = iconst\n  ret\n}", "missing immediate"},
		{"bad imm", "func @f {\n entry:\n  %0:gpr = iconst twelve\n  ret\n}", "bad immediate"},
		{"bad fimm", "func @f {\n entry:\n  %0:fp = fconst pi\n  ret\n}", "bad float immediate"},
		{"unknown successor", "func @f {\n entry:\n  br nowhere\n}", "unknown successor"},
		{"bad trip", "func @f {\n entry: !trip=lots\n  ret\n}", "bad trip count"},
		{"unknown block meta", "func @f {\n entry: !hot\n  ret\n}", "unknown block metadata"},
		{"empty block", "func @f {\n entry:\n dead:\n  ret\n}", "empty block"},
		{"missing terminator", "func @f {\n entry:\n  %0:fp = fconst 1\n}", "terminator"},
		{"class mismatch", "func @f {\n entry:\n  %0:gpr = fconst 1\n  ret\n}", "class"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", tc.src, r)
				}
			}()
			f, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse accepted malformed source, got func %q", f.Name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseModuleMalformedReturnsError covers the module-level error paths.
func TestParseModuleMalformedReturnsError(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unterminated func", "module m\nfunc @f {\n entry:\n  ret\n", "unterminated function"},
		{"bad inner func", "module m\nfunc @f {\n entry:\n  frob\n}\n", "unknown opcode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseModule(tc.src); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParseModule error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestParseBoundsAccepted pins the in-range edges of the new operand
// bounds: the largest legal indices still parse.
func TestParseBoundsAccepted(t *testing.T) {
	src := "func @f {\n entry:\n  f1023 = fmov f0\n  x31 = imov x0\n  ret\n}"
	if _, err := Parse(src); err != nil {
		t.Fatalf("in-range physical registers rejected: %v", err)
	}
}
