// Package ir defines a compact machine-level intermediate representation
// (MIR) used throughout the PresCount reproduction: virtual and physical
// registers in two register classes, instructions with explicit def/use
// operand lists, basic blocks with explicit successors, and functions with
// loop trip-count metadata.
//
// The IR is deliberately post-instruction-selection and non-SSA: a virtual
// register may be redefined, exactly as LLVM Machine IR after two-address
// lowering. This is the representation on which register coalescing,
// pre-allocation scheduling, bank assignment and register allocation operate
// in the pipeline of the paper's Figure 4.
package ir

import "fmt"

// Reg names a register operand. The zero value NoReg means "no register".
//
// Physical registers occupy the low id space: GPRs x0..x31 are ids 1..32 and
// FP registers f0..f(n-1) are ids 33..33+n-1. Virtual registers have the top
// bit set and carry a dense index. Helpers below convert between the spaces.
type Reg uint32

// NoReg is the absent register (zero value).
const NoReg Reg = 0

const (
	virtFlag Reg = 1 << 31

	// NumGPR is the number of physical general-purpose registers (x0..x31,
	// riscv-64 style). GPRs are never banked; they hold addresses, loop
	// counters and comparison results.
	NumGPR = 32

	gprBase Reg = 1
	fprBase Reg = gprBase + NumGPR
)

// VReg returns the virtual register with dense index i (i >= 0).
func VReg(i int) Reg {
	if i < 0 {
		panic(fmt.Sprintf("ir: negative virtual register index %d", i))
	}
	return virtFlag | Reg(i)
}

// XReg returns physical GPR i (x0..x31).
func XReg(i int) Reg {
	if i < 0 || i >= NumGPR {
		panic(fmt.Sprintf("ir: GPR index %d out of range", i))
	}
	return gprBase + Reg(i)
}

// FReg returns physical FP register i. The FP file size is configurable per
// platform (32 or 1024 in the paper's settings); the encoding itself allows
// any index below 2^30.
func FReg(i int) Reg {
	if i < 0 || i >= int(virtFlag-fprBase) {
		panic(fmt.Sprintf("ir: FP register index %d out of range", i))
	}
	return fprBase + Reg(i)
}

// IsVirt reports whether r is a virtual register.
func (r Reg) IsVirt() bool { return r&virtFlag != 0 }

// IsPhys reports whether r is a physical register.
func (r Reg) IsPhys() bool { return r != NoReg && r&virtFlag == 0 }

// VirtIndex returns the dense index of a virtual register.
func (r Reg) VirtIndex() int {
	if !r.IsVirt() {
		panic(fmt.Sprintf("ir: VirtIndex of non-virtual register %v", r))
	}
	return int(r &^ virtFlag)
}

// IsGPR reports whether r is a physical GPR.
func (r Reg) IsGPR() bool { return r >= gprBase && r < fprBase }

// IsFPR reports whether r is a physical FP register.
func (r Reg) IsFPR() bool { return r.IsPhys() && r >= fprBase }

// GPRIndex returns i for the physical GPR xi.
func (r Reg) GPRIndex() int {
	if !r.IsGPR() {
		panic(fmt.Sprintf("ir: GPRIndex of %v", r))
	}
	return int(r - gprBase)
}

// FPRIndex returns i for the physical FP register fi.
func (r Reg) FPRIndex() int {
	if !r.IsFPR() {
		panic(fmt.Sprintf("ir: FPRIndex of %v", r))
	}
	return int(r - fprBase)
}

// String renders the register in the textual MIR syntax: %N for virtual
// registers, xN / fN for physical ones.
func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "noreg"
	case r.IsVirt():
		return fmt.Sprintf("%%%d", r.VirtIndex())
	case r.IsGPR():
		return fmt.Sprintf("x%d", r.GPRIndex())
	default:
		return fmt.Sprintf("f%d", r.FPRIndex())
	}
}

// CallerSavedFPR reports whether FP register index i of an n-register file
// is caller-saved (clobbered by calls). The callee-saved set is the top
// min(12, 3n/8) registers: 12 of 32 matches the riscv-64 fs registers, and
// the cap models the usual ABI treatment of extended register files, whose
// additional registers are all temporaries — which is why spilling persists
// even on a 1024-register file (the paper's Sp1k column).
func CallerSavedFPR(i, n int) bool {
	callee := 3 * n / 8
	if callee > 12 {
		callee = 12
	}
	return i < n-callee
}

// CallerSavedGPR reports whether GPR index i is caller-saved. The first 20
// registers are treated as caller-saved (a/t registers), the rest as
// callee-saved (s registers).
func CallerSavedGPR(i int) bool { return i < 20 }

// Class is a register class. The FP class is the multi-banked file the paper
// studies; the GPR class is the scalar file used for addressing and control.
type Class uint8

const (
	// ClassNone is the zero Class; it is invalid in operands.
	ClassNone Class = iota
	// ClassGPR is the scalar integer class (unbanked).
	ClassGPR
	// ClassFP is the floating-point/vector class (multi-banked).
	ClassFP
)

// String returns the textual class name used by the MIR parser/printer.
func (c Class) String() string {
	switch c {
	case ClassGPR:
		return "gpr"
	case ClassFP:
		return "fp"
	default:
		return "none"
	}
}
