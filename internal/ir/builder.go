package ir

import "fmt"

// Builder provides a fluent API for constructing functions. It is the
// interface the workload generators and examples use; it keeps a current
// insertion block and offers one method per opcode family.
//
// All value-producing methods allocate and return a fresh virtual register,
// keeping generated code in "almost SSA" form; loop-carried values are
// updated with explicit copies via SetReg-style ops (Assign).
type Builder struct {
	f   *Func
	cur *Block
}

// NewBuilder returns a builder for a new function with the given name and
// an entry block labeled "entry".
func NewBuilder(name string) *Builder {
	f := NewFunc(name)
	b := &Builder{f: f}
	b.cur = f.NewBlock("entry")
	return b
}

// Func finalizes and returns the function, recomputing predecessor lists and
// verifying structural invariants. It panics on malformed IR: builder misuse
// is a programming error of the generator, not an input error.
func (b *Builder) Func() *Func {
	b.f.RecomputePreds()
	if err := b.f.Verify(); err != nil {
		panic(err)
	}
	return b.f
}

// Raw returns the function under construction without verification.
func (b *Builder) Raw() *Func { return b.f }

// Block creates a new block with the given label without switching to it.
func (b *Builder) Block(name string) *Block { return b.f.NewBlock(name) }

// SetBlock moves the insertion point to blk.
func (b *Builder) SetBlock(blk *Block) { b.cur = blk }

// Current returns the current insertion block.
func (b *Builder) Current() *Block { return b.cur }

// SetTripCount attaches loop trip-count metadata to blk (a loop header).
func (b *Builder) SetTripCount(blk *Block, n int64) { blk.TripCount = n }

func (b *Builder) emit(in *Instr) *Instr {
	if b.cur == nil {
		panic("ir: Builder has no current block")
	}
	if t := b.cur.Terminator(); t != nil {
		panic(fmt.Sprintf("ir: emitting %s after terminator in block %s", in.Op, b.cur.Name))
	}
	b.f.MarkMutated()
	b.cur.Instrs = append(b.cur.Instrs, in)
	return in
}

func (b *Builder) def1(op Op, uses []Reg, imm int64, fimm float64) Reg {
	d := b.f.NewVReg(op.DefClass())
	b.emit(&Instr{Op: op, Defs: []Reg{d}, Uses: uses, Imm: imm, FImm: fimm})
	return d
}

// IConst emits an integer constant definition.
func (b *Builder) IConst(v int64) Reg { return b.def1(OpIConst, nil, v, 0) }

// IMov emits a GPR copy.
func (b *Builder) IMov(src Reg) Reg { return b.def1(OpIMov, []Reg{src}, 0, 0) }

// IAdd emits an integer addition.
func (b *Builder) IAdd(x, y Reg) Reg { return b.def1(OpIAdd, []Reg{x, y}, 0, 0) }

// IAddI emits an integer add-immediate.
func (b *Builder) IAddI(x Reg, v int64) Reg { return b.def1(OpIAddI, []Reg{x}, v, 0) }

// IMul emits an integer multiplication.
func (b *Builder) IMul(x, y Reg) Reg { return b.def1(OpIMul, []Reg{x, y}, 0, 0) }

// IMulI emits an integer multiply-immediate.
func (b *Builder) IMulI(x Reg, v int64) Reg { return b.def1(OpIMulI, []Reg{x}, v, 0) }

// ICmpLt emits x < y.
func (b *Builder) ICmpLt(x, y Reg) Reg { return b.def1(OpICmpLt, []Reg{x, y}, 0, 0) }

// ICmpLtI emits x < v.
func (b *Builder) ICmpLtI(x Reg, v int64) Reg { return b.def1(OpICmpLtI, []Reg{x}, v, 0) }

// FConst emits a floating-point constant definition.
func (b *Builder) FConst(v float64) Reg { return b.def1(OpFConst, nil, 0, v) }

// FMov emits an FP copy.
func (b *Builder) FMov(src Reg) Reg { return b.def1(OpFMov, []Reg{src}, 0, 0) }

// FNeg emits -x.
func (b *Builder) FNeg(x Reg) Reg { return b.def1(OpFNeg, []Reg{x}, 0, 0) }

// FAdd emits x + y.
func (b *Builder) FAdd(x, y Reg) Reg { return b.def1(OpFAdd, []Reg{x, y}, 0, 0) }

// FSub emits x - y.
func (b *Builder) FSub(x, y Reg) Reg { return b.def1(OpFSub, []Reg{x, y}, 0, 0) }

// FMul emits x * y.
func (b *Builder) FMul(x, y Reg) Reg { return b.def1(OpFMul, []Reg{x, y}, 0, 0) }

// FDiv emits x / y.
func (b *Builder) FDiv(x, y Reg) Reg { return b.def1(OpFDiv, []Reg{x, y}, 0, 0) }

// FMin emits min(x, y).
func (b *Builder) FMin(x, y Reg) Reg { return b.def1(OpFMin, []Reg{x, y}, 0, 0) }

// FMax emits max(x, y).
func (b *Builder) FMax(x, y Reg) Reg { return b.def1(OpFMax, []Reg{x, y}, 0, 0) }

// FMA emits x*y + z.
func (b *Builder) FMA(x, y, z Reg) Reg { return b.def1(OpFMA, []Reg{x, y, z}, 0, 0) }

// FLoad emits a load of mem[base+off].
func (b *Builder) FLoad(base Reg, off int64) Reg { return b.def1(OpFLoad, []Reg{base}, off, 0) }

// FStore emits a store of val to mem[base+off].
func (b *Builder) FStore(val, base Reg, off int64) {
	b.emit(&Instr{Op: OpFStore, Uses: []Reg{val, base}, Imm: off})
}

// Assign emits a copy of src into the existing register dst (loop-carried
// update). dst and src must share a class.
func (b *Builder) Assign(dst, src Reg) {
	op := OpFMov
	if b.f.RegClass(dst) == ClassGPR {
		op = OpIMov
	}
	b.emit(&Instr{Op: op, Defs: []Reg{dst}, Uses: []Reg{src}})
}

// Call emits an external call (clobbers caller-saved registers).
func (b *Builder) Call() { b.emit(&Instr{Op: OpCall}) }

// Br emits an unconditional branch to target and leaves the current block
// terminated.
func (b *Builder) Br(target *Block) {
	b.emit(&Instr{Op: OpBr})
	b.cur.Succs = []*Block{target}
}

// CondBr emits a conditional branch: to taken if cond != 0, else to fallthru.
func (b *Builder) CondBr(cond Reg, taken, fallthru *Block) {
	b.emit(&Instr{Op: OpCondBr, Uses: []Reg{cond}})
	b.cur.Succs = []*Block{taken, fallthru}
}

// Ret emits a return.
func (b *Builder) Ret() { b.emit(&Instr{Op: OpRet}) }

// Loop is a convenience for counted loops. It emits:
//
//	i = 0; br header
//	header: body(i);  i += step; if i < n br header else exit
//
// body runs with the insertion point inside the loop; Loop returns with the
// insertion point in the exit block. trip is attached as the header's
// trip-count metadata.
func (b *Builder) Loop(n, step int64, body func(i Reg)) {
	iv := b.IConst(0)
	header := b.Block(fmt.Sprintf("loop%d", header2(b.f)))
	exit := b.Block(fmt.Sprintf("exit%d", header2(b.f)))
	b.Br(header)
	b.SetBlock(header)
	if step > 0 {
		header.TripCount = (n + step - 1) / step
	}
	body(iv)
	next := b.IAddI(iv, step)
	b.Assign(iv, next)
	cond := b.ICmpLtI(iv, n)
	b.CondBr(cond, header, exit)
	b.SetBlock(exit)
}

func header2(f *Func) int { return len(f.Blocks) }
