package ir

import "math/bits"

// RegSet is a dense bitset over virtual registers: bit i of the backing
// words corresponds to the register VReg(i) (the VirtIndex order). It is
// the allocation-free replacement for map[ir.Reg]bool sets in the hot
// analyses — virtual register indexes are dense by construction, so a set
// of them is one machine word per 64 registers, membership is a shift and
// a mask, and set union/difference in the liveness fixpoint become
// word-parallel loops. Physical registers are not representable; callers
// that mix classes keep their own side structure.
//
// The zero value is an empty set that grows on Add. Sets backed by a
// scratch arena (see internal/scratch) are created with RegSetFromWords
// and must not outlive the arena's compile.
type RegSet struct {
	words []uint64
}

// NewRegSet returns an empty set with capacity for indexes [0, n).
func NewRegSet(n int) RegSet {
	return RegSet{words: make([]uint64, (n+63)/64)}
}

// RegSetFromWords wraps caller-provided (zeroed) backing words, typically
// handed out by a scratch arena. The set can index up to 64*len(words)
// registers and still grows (onto fresh heap) past that.
func RegSetFromWords(words []uint64) RegSet { return RegSet{words: words} }

// Has reports whether the set contains r. Registers beyond the backing
// capacity are absent, so Has never allocates and is safe on the zero
// value. r must be virtual.
func (s RegSet) Has(r Reg) bool {
	i := r.VirtIndex()
	w := i >> 6
	return w < len(s.words) && s.words[w]&(1<<(uint(i)&63)) != 0
}

// Add inserts r, growing the backing words if needed. r must be virtual.
func (s *RegSet) Add(r Reg) {
	i := r.VirtIndex()
	w := i >> 6
	if w >= len(s.words) {
		grown := make([]uint64, w+1)
		copy(grown, s.words)
		s.words = grown
	}
	s.words[w] |= 1 << (uint(i) & 63)
}

// Remove deletes r from the set. r must be virtual.
func (s *RegSet) Remove(r Reg) {
	i := r.VirtIndex()
	w := i >> 6
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(i) & 63)
	}
}

// Len returns the number of members.
func (s RegSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s RegSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes every member, keeping the backing words.
func (s *RegSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ForEach calls fn for every member in increasing VirtIndex order — a
// deterministic iteration, unlike ranging over the map sets this type
// replaces.
func (s RegSet) ForEach(fn func(Reg)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(VReg(wi<<6 + b))
			w &= w - 1
		}
	}
}

// UnionWith adds every member of o and reports whether the set changed.
// o must not have more backing words than s (liveness sizes every set to
// the same vreg capacity, so the fixpoint never grows mid-iteration).
func (s *RegSet) UnionWith(o RegSet) bool {
	changed := false
	for i, w := range o.words {
		if w&^s.words[i] != 0 {
			s.words[i] |= w
			changed = true
		}
	}
	return changed
}

// Equal reports whether the two sets have the same members.
func (s RegSet) Equal(o RegSet) bool {
	a, b := s.words, o.words
	if len(a) < len(b) {
		a, b = b, a
	}
	for i, w := range b {
		if w != a[i] {
			return false
		}
	}
	for _, w := range a[len(b):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Words exposes the backing words (bit i of word w is VReg(64*w+i)); the
// liveness fixpoint and the verifier's set diff operate on words directly.
func (s RegSet) Words() []uint64 { return s.words }
