package ir

import (
	"strings"
	"testing"
)

func TestRegEncoding(t *testing.T) {
	cases := []struct {
		r       Reg
		virt    bool
		gpr     bool
		fpr     bool
		str     string
		virtIdx int
	}{
		{VReg(0), true, false, false, "%0", 0},
		{VReg(123456), true, false, false, "%123456", 123456},
		{XReg(0), false, true, false, "x0", -1},
		{XReg(31), false, true, false, "x31", -1},
		{FReg(0), false, false, true, "f0", -1},
		{FReg(1023), false, false, true, "f1023", -1},
	}
	for _, c := range cases {
		if c.r.IsVirt() != c.virt {
			t.Errorf("%v: IsVirt=%v want %v", c.r, c.r.IsVirt(), c.virt)
		}
		if c.r.IsGPR() != c.gpr {
			t.Errorf("%v: IsGPR=%v want %v", c.r, c.r.IsGPR(), c.gpr)
		}
		if c.r.IsFPR() != c.fpr {
			t.Errorf("%v: IsFPR=%v want %v", c.r, c.r.IsFPR(), c.fpr)
		}
		if c.r.String() != c.str {
			t.Errorf("%v: String=%q want %q", c.r, c.r.String(), c.str)
		}
		if c.virt && c.r.VirtIndex() != c.virtIdx {
			t.Errorf("%v: VirtIndex=%d want %d", c.r, c.r.VirtIndex(), c.virtIdx)
		}
	}
	if NoReg.IsPhys() || NoReg.IsVirt() {
		t.Error("NoReg must be neither physical nor virtual")
	}
}

func TestRegIndexRoundTrip(t *testing.T) {
	for i := 0; i < 2000; i++ {
		if got := FReg(i).FPRIndex(); got != i {
			t.Fatalf("FReg(%d).FPRIndex() = %d", i, got)
		}
	}
	for i := 0; i < NumGPR; i++ {
		if got := XReg(i).GPRIndex(); got != i {
			t.Fatalf("XReg(%d).GPRIndex() = %d", i, got)
		}
	}
}

func TestOpSignatures(t *testing.T) {
	if !OpFAdd.IsConflictRelevant() || !OpFMA.IsConflictRelevant() {
		t.Error("fadd/fma must be conflict-relevant")
	}
	if OpFMov.IsConflictRelevant() || OpFLoad.IsConflictRelevant() || OpFStore.IsConflictRelevant() {
		t.Error("fmov/fload/fstore must not be conflict-relevant")
	}
	if OpFMA.FPUseCount() != 3 {
		t.Errorf("fma FPUseCount = %d, want 3", OpFMA.FPUseCount())
	}
	if OpFStore.FPUseCount() != 1 {
		t.Errorf("fstore FPUseCount = %d, want 1", OpFStore.FPUseCount())
	}
	if !OpBr.IsTerminator() || !OpCondBr.IsTerminator() || !OpRet.IsTerminator() {
		t.Error("branch ops must be terminators")
	}
	if OpCondBr.NumSuccs() != 2 || OpBr.NumSuccs() != 1 || OpRet.NumSuccs() != 0 {
		t.Error("wrong successor counts")
	}
	if !OpFMov.IsCopy() || !OpIMov.IsCopy() || OpFAdd.IsCopy() {
		t.Error("copy classification wrong")
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v,%v; want %v", op.String(), got, ok, op)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName accepted bogus mnemonic")
	}
}

// buildSAXPY constructs y[i] = a*x[i] + y[i] over n elements.
func buildSAXPY(n int64) *Func {
	b := NewBuilder("saxpy")
	xbase := b.IConst(0)
	ybase := b.IConst(1000)
	a := b.FConst(2.0)
	b.Loop(n, 1, func(i Reg) {
		addrx := b.IAdd(xbase, i)
		addry := b.IAdd(ybase, i)
		x := b.FLoad(addrx, 0)
		y := b.FLoad(addry, 0)
		v := b.FMA(a, x, y)
		b.FStore(v, addry, 0)
	})
	b.Ret()
	return b.Func()
}

func TestBuilderProducesValidFunc(t *testing.T) {
	f := buildSAXPY(16)
	if err := f.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(f.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3 (entry, loop, exit)", len(f.Blocks))
	}
	loop := f.Blocks[1]
	if loop.TripCount != 16 {
		t.Errorf("loop trip count = %d, want 16", loop.TripCount)
	}
	if len(loop.Preds) != 2 {
		t.Errorf("loop header preds = %d, want 2", len(loop.Preds))
	}
	// The loop body contains an FMA, which is conflict-relevant.
	found := false
	for _, in := range loop.Instrs {
		if in.Op == OpFMA && in.IsConflictRelevant() {
			found = true
		}
	}
	if !found {
		t.Error("expected conflict-relevant FMA in loop body")
	}
}

func TestVerifyCatchesBadIR(t *testing.T) {
	t.Run("terminator in middle", func(t *testing.T) {
		f := NewFunc("bad")
		blk := f.NewBlock("entry")
		blk.Instrs = []*Instr{{Op: OpRet}, {Op: OpNop}}
		if err := f.Verify(); err == nil {
			t.Error("Verify accepted terminator in block middle")
		}
	})
	t.Run("missing terminator", func(t *testing.T) {
		f := NewFunc("bad")
		blk := f.NewBlock("entry")
		blk.Instrs = []*Instr{{Op: OpNop}}
		if err := f.Verify(); err == nil {
			t.Error("Verify accepted block without terminator")
		}
	})
	t.Run("class mismatch", func(t *testing.T) {
		f := NewFunc("bad")
		g := f.NewVReg(ClassGPR)
		h := f.NewVReg(ClassGPR)
		blk := f.NewBlock("entry")
		blk.Instrs = []*Instr{
			{Op: OpFAdd, Defs: []Reg{g}, Uses: []Reg{h, h}},
			{Op: OpRet},
		}
		if err := f.Verify(); err == nil {
			t.Error("Verify accepted GPR operands on fadd")
		}
	})
	t.Run("wrong use count", func(t *testing.T) {
		f := NewFunc("bad")
		v := f.NewVReg(ClassFP)
		blk := f.NewBlock("entry")
		blk.Instrs = []*Instr{
			{Op: OpFAdd, Defs: []Reg{v}, Uses: []Reg{v}},
			{Op: OpRet},
		}
		if err := f.Verify(); err == nil {
			t.Error("Verify accepted fadd with one use")
		}
	})
	t.Run("succ count mismatch", func(t *testing.T) {
		f := NewFunc("bad")
		blk := f.NewBlock("entry")
		blk.Instrs = []*Instr{{Op: OpBr}}
		if err := f.Verify(); err == nil {
			t.Error("Verify accepted br with no successors")
		}
	})
}

func TestCloneIsDeep(t *testing.T) {
	f := buildSAXPY(8)
	c := f.Clone()
	if err := c.Verify(); err != nil {
		t.Fatalf("clone Verify: %v", err)
	}
	// Mutating the clone must not affect the original.
	c.Blocks[1].Instrs[0].Imm = 999
	c.Blocks[1].TripCount = 777
	if f.Blocks[1].Instrs[0].Imm == 999 {
		t.Error("instruction sharing between clone and original")
	}
	if f.Blocks[1].TripCount == 777 {
		t.Error("block metadata shared between clone and original")
	}
	// Clone successors must point at clone blocks.
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			if s == f.Blocks[s.ID] {
				t.Fatal("clone successor points at original block")
			}
		}
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	f := buildSAXPY(32)
	text := Print(f)
	g, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse failed:\n%s\nerr: %v", text, err)
	}
	text2 := Print(g)
	if text != text2 {
		t.Errorf("round trip mismatch:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
	if g.Blocks[1].TripCount != 32 {
		t.Errorf("trip count lost in round trip: %d", g.Blocks[1].TripCount)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown op", "func @f {\n entry:\n bogus\n}"},
		{"bad succ", "func @f {\n entry:\n br ; succs: nowhere\n}"},
		{"no header", "entry:\n ret\n}"},
		{"bad imm", "func @f {\n entry:\n %0:gpr = iconst abc\n ret\n}"},
		{"missing imm", "func @f {\n entry:\n %0:gpr = iconst\n ret\n}"},
		{"instr before label", "func @f {\n nop\n}"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.src); err == nil {
				t.Errorf("Parse accepted invalid input %q", c.src)
			}
		})
	}
}

func TestParsePhysicalRegs(t *testing.T) {
	src := `func @phys {
  entry:
    f0 = fconst 1.5
    f1 = fconst 2.5
    f2 = fadd f0, f1
    x1 = iconst 0
    fstore f2, x1, 0
    ret
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	in := f.Blocks[0].Instrs[2]
	if in.Op != OpFAdd || in.Defs[0] != FReg(2) || in.Uses[0] != FReg(0) || in.Uses[1] != FReg(1) {
		t.Errorf("parsed physical operands wrong: %+v", in)
	}
}

func TestModuleRoundTrip(t *testing.T) {
	m := NewModule("testmod")
	m.Add(buildSAXPY(4))
	b := NewBuilder("second")
	b.Ret()
	m.Add(b.Func())

	text := PrintModule(m)
	m2, err := ParseModule(text)
	if err != nil {
		t.Fatalf("ParseModule: %v", err)
	}
	if len(m2.Funcs) != 2 {
		t.Fatalf("got %d funcs, want 2", len(m2.Funcs))
	}
	if PrintModule(m2) != text {
		t.Error("module round trip mismatch")
	}
	if err := m2.Verify(); err != nil {
		t.Errorf("module Verify: %v", err)
	}
}

func TestModuleDeterministicOrder(t *testing.T) {
	m := NewModule("m")
	for _, n := range []string{"zeta", "alpha", "mid"} {
		b := NewBuilder(n)
		b.Ret()
		m.Add(b.Func())
	}
	names := m.FuncNames()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("FuncNames = %v, want %v", names, want)
		}
	}
}

func TestInsertBefore(t *testing.T) {
	b := NewBuilder("ins")
	v := b.FConst(1)
	w := b.FConst(2)
	_ = b.FAdd(v, w)
	b.Ret()
	f := b.Func()
	blk := f.Blocks[0]
	n := len(blk.Instrs)
	nop := &Instr{Op: OpNop}
	blk.InsertBefore(2, nop)
	if len(blk.Instrs) != n+1 || blk.Instrs[2] != nop {
		t.Fatalf("InsertBefore failed: %v", blk.Instrs)
	}
	if blk.Instrs[3].Op != OpFAdd {
		t.Errorf("instruction after insertion point should be fadd, got %v", blk.Instrs[3].Op)
	}
}

func TestPrintContainsSuccsAndTrip(t *testing.T) {
	f := buildSAXPY(5)
	text := Print(f)
	if !strings.Contains(text, "!trip=5") {
		t.Errorf("printed MIR missing trip metadata:\n%s", text)
	}
	if !strings.Contains(text, "; succs:") {
		t.Errorf("printed MIR missing successor annotations:\n%s", text)
	}
}

func TestCallRoundTrip(t *testing.T) {
	b := NewBuilder("withcall")
	base := b.IConst(0)
	v := b.FConst(1)
	b.Call()
	b.FStore(v, base, 0)
	b.Ret()
	f := b.Func()
	text := Print(f)
	if !strings.Contains(text, "call") {
		t.Fatalf("printed MIR missing call:\n%s", text)
	}
	g, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if Print(g) != text {
		t.Error("call round trip mismatch")
	}
}

func TestCallerSavedConventions(t *testing.T) {
	// riscv-like split at 32 registers: 20 caller-saved, 12 callee-saved.
	callee := 0
	for i := 0; i < 32; i++ {
		if !CallerSavedFPR(i, 32) {
			callee++
		}
	}
	if callee != 12 {
		t.Errorf("callee-saved count at 32 regs = %d, want 12", callee)
	}
	// The cap: a 1024-register file still has only 12 callee-saved.
	callee = 0
	for i := 0; i < 1024; i++ {
		if !CallerSavedFPR(i, 1024) {
			callee++
		}
	}
	if callee != 12 {
		t.Errorf("callee-saved count at 1024 regs = %d, want 12 (capped)", callee)
	}
	// Callee-saved registers are the top indexes.
	if CallerSavedFPR(1023, 1024) || !CallerSavedFPR(0, 1024) {
		t.Error("callee-saved must occupy the top of the file")
	}
	// GPRs: x20..x31 callee-saved.
	if CallerSavedGPR(20) || !CallerSavedGPR(19) {
		t.Error("GPR convention wrong")
	}
}

func TestRegPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("VReg(-1)", func() { VReg(-1) })
	mustPanic("XReg(32)", func() { XReg(32) })
	mustPanic("FReg(-1)", func() { FReg(-1) })
	mustPanic("VirtIndex on phys", func() { FReg(0).VirtIndex() })
	mustPanic("FPRIndex on GPR", func() { XReg(0).FPRIndex() })
	mustPanic("GPRIndex on FPR", func() { FReg(0).GPRIndex() })
}
