package ir

import (
	"fmt"
	"strings"
)

// Rule IDs emitted by ir.Func.Verify. The remaining verifier rules
// (liveness agreement, bank constraints, allocation soundness, scheduling
// dependence preservation) live in internal/verify, which shares this
// diagnostic type.
const (
	// RuleWellFormed covers structural invariants: operand counts and
	// classes, terminator placement, successor counts, register index
	// bounds, non-empty blocks.
	RuleWellFormed = "V001-wellformed"
	// RuleLoopMeta covers loop trip-count metadata validity.
	RuleLoopMeta = "V003-loop-metadata"
)

// Diag is a structured verifier diagnostic: a named rule plus the location
// it fires at. It is the shared diagnostic currency of ir.Func.Verify and
// the phase-boundary verifier (internal/verify) — callers that need the
// rule ID or the precise location use errors.As to recover it from the
// error chain.
type Diag struct {
	// Rule is the named rule ID, e.g. "V030-physreg-overlap".
	Rule string
	// Func is the function the diagnostic points at.
	Func string
	// Block is the block label; empty for function-level diagnostics.
	Block string
	// Instr is the instruction index within Block; -1 when the diagnostic
	// is not tied to a single instruction.
	Instr int
	// Msg is the human-readable description of the violation.
	Msg string
}

// Diagf constructs a diagnostic with a formatted message. Pass instr=-1
// for block- or function-level diagnostics and block="" for
// function-level ones.
func Diagf(rule, fn, block string, instr int, format string, args ...any) *Diag {
	return &Diag{Rule: rule, Func: fn, Block: block, Instr: instr, Msg: fmt.Sprintf(format, args...)}
}

// Error renders the diagnostic as "RULE: func/block#idx: message", with the
// block and instruction parts omitted when absent.
func (d *Diag) Error() string {
	var b strings.Builder
	b.WriteString(d.Rule)
	b.WriteString(": ")
	b.WriteString(d.Func)
	if d.Block != "" {
		b.WriteByte('/')
		b.WriteString(d.Block)
	}
	if d.Instr >= 0 {
		fmt.Fprintf(&b, "#%d", d.Instr)
	}
	b.WriteString(": ")
	b.WriteString(d.Msg)
	return b.String()
}
