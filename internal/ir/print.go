package ir

import (
	"fmt"
	"strings"
)

// Print renders the function in the textual MIR format accepted by Parse.
//
// The format, one instruction per line:
//
//	func @name {
//	  entry:
//	    %0:gpr = iconst 0
//	    br loop2 ; succs: loop2
//	  loop2: !trip=100
//	    %3:fp = fload %1, 4
//	    ...
//	    condbr %9 ; succs: loop2, exit3
//	  exit3:
//	    ret
//	}
func Print(f *Func) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func @%s {\n", f.Name)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "  %s:", b.Name)
		if b.TripCount != 0 {
			fmt.Fprintf(&sb, " !trip=%d", b.TripCount)
		}
		sb.WriteByte('\n')
		for _, in := range b.Instrs {
			sb.WriteString("    ")
			sb.WriteString(formatInstr(f, b, in))
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func formatInstr(f *Func, b *Block, in *Instr) string {
	var sb strings.Builder
	if len(in.Defs) > 0 {
		for i, d := range in.Defs {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(regWithClass(f, d))
		}
		sb.WriteString(" = ")
	}
	sb.WriteString(in.Op.String())
	first := true
	arg := func(s string) {
		if first {
			sb.WriteByte(' ')
			first = false
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(s)
	}
	for _, u := range in.Uses {
		arg(u.String())
	}
	if in.Op.HasImm() {
		arg(fmt.Sprintf("%d", in.Imm))
	}
	if in.Op.HasFImm() {
		arg(fmt.Sprintf("%g", in.FImm))
	}
	if in.Op.IsTerminator() && len(b.Succs) > 0 {
		names := make([]string, len(b.Succs))
		for i, s := range b.Succs {
			names[i] = s.Name
		}
		sb.WriteString(" ; succs: ")
		sb.WriteString(strings.Join(names, ", "))
	}
	return sb.String()
}

func regWithClass(f *Func, r Reg) string {
	if r.IsVirt() {
		return fmt.Sprintf("%s:%s", r, f.VRegs[r.VirtIndex()].Class)
	}
	return r.String()
}

// PrintModule renders every function of the module in name order.
func PrintModule(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n\n", m.Name)
	for _, f := range m.SortedFuncs() {
		sb.WriteString(Print(f))
		sb.WriteByte('\n')
	}
	return sb.String()
}
