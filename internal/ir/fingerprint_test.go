package ir_test

import (
	"sync"
	"testing"

	"prescount/internal/ir"
	"prescount/internal/workload"
)

// buildTwoBlock returns a small two-block function for mutation tests.
func buildTwoBlock(name string) *ir.Func {
	b := ir.NewBuilder(name)
	base := b.IConst(0)
	x := b.FConst(1.5)
	y := b.FConst(2.5)
	z := b.FAdd(x, y)
	b.FStore(z, base, 0)
	exit := b.Block("exit")
	b.Br(exit)
	b.SetBlock(exit)
	b.Ret()
	return b.Func()
}

// TestFingerprintCollisionSanity: distinct random functions hash
// differently. workload.RandomSized is the generator the scaling sweeps
// use, so these are exactly the shapes the compile cache will key on.
func TestFingerprintCollisionSanity(t *testing.T) {
	seen := map[ir.Fingerprint]int64{}
	for seed := int64(0); seed < 3; seed++ {
		for _, size := range []int{20, 100, 400} {
			f := workload.RandomSized(seed, size)
			fp := f.Fingerprint()
			if prev, dup := seen[fp]; dup {
				t.Fatalf("fingerprint collision: seed=%d size=%d collides with seed/size key %d", seed, size, prev)
			}
			seen[fp] = seed*1000 + int64(size)
		}
	}
}

// TestFingerprintIgnoresName: the fingerprint is a content address, so the
// symbol name must not participate (repeated kernels appear under distinct
// names across programs).
func TestFingerprintIgnoresName(t *testing.T) {
	a := buildTwoBlock("alpha")
	b := buildTwoBlock("beta")
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprint depends on function name: %v vs %v", a.Fingerprint(), b.Fingerprint())
	}
}

// TestFingerprintCloneStability: Clone must preserve the fingerprint —
// the compile cache clones prefix snapshots and expects the clone to stand
// in for the original.
func TestFingerprintCloneStability(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		f := workload.RandomSized(seed, 120)
		want := f.Fingerprint()
		c := f.Clone()
		if got := c.Fingerprint(); got != want {
			t.Fatalf("seed %d: clone fingerprint %v != original %v", seed, got, want)
		}
		// And the clone's cache is independent: mutating the clone must not
		// disturb the original.
		c.NewVReg(ir.ClassFP)
		if got := f.Fingerprint(); got != want {
			t.Fatalf("seed %d: original fingerprint changed after clone mutation", seed)
		}
	}
}

// TestFingerprintInvalidation exercises every mutating ir.Func entry point
// and checks the cached fingerprint is invalidated (the recomputed value
// reflects the new structure, or — for structure-neutral mutations like
// RecomputePreds — stays equal to a fresh function's hash).
func TestFingerprintInvalidation(t *testing.T) {
	t.Run("NewVReg", func(t *testing.T) {
		f := buildTwoBlock("f")
		before := f.Fingerprint()
		f.NewVReg(ir.ClassFP)
		if f.Fingerprint() == before {
			t.Fatal("fingerprint not invalidated by NewVReg")
		}
	})
	t.Run("NewBlock", func(t *testing.T) {
		f := buildTwoBlock("f")
		before := f.Fingerprint()
		nb := f.NewBlock("extra")
		nb.Instrs = append(nb.Instrs, &ir.Instr{Op: ir.OpRet})
		if f.Fingerprint() == before {
			t.Fatal("fingerprint not invalidated by NewBlock")
		}
	})
	t.Run("MarkMutated", func(t *testing.T) {
		f := buildTwoBlock("f")
		before := f.Fingerprint()
		// Transform-style in-place rewrite: edit an immediate, then mark.
		f.Entry().Instrs[0].Imm++
		f.MarkMutated()
		if f.Fingerprint() == before {
			t.Fatal("fingerprint not recomputed after MarkMutated rewrite")
		}
	})
	t.Run("RecomputePreds", func(t *testing.T) {
		f := buildTwoBlock("f")
		before := f.Fingerprint()
		f.RecomputePreds()
		// Structure unchanged: the recomputed hash must match, proving the
		// cache re-derives rather than serving a generation-stale entry.
		if f.Fingerprint() != before {
			t.Fatal("structure-neutral RecomputePreds changed the fingerprint")
		}
	})
	t.Run("TripCount", func(t *testing.T) {
		f := buildTwoBlock("f")
		before := f.Fingerprint()
		f.Entry().TripCount = 7
		f.MarkMutated()
		if f.Fingerprint() == before {
			t.Fatal("fingerprint ignores trip counts (they weight conflict costs)")
		}
	})
	t.Run("SpillSlots", func(t *testing.T) {
		f := buildTwoBlock("f")
		before := f.Fingerprint()
		f.SpillSlots = 3
		f.MarkMutated()
		if f.Fingerprint() == before {
			t.Fatal("fingerprint ignores SpillSlots (it seeds spill numbering)")
		}
	})
}

// TestFingerprintConcurrent: parallel sweep workers fingerprint the same
// shared input function; the cached computation must be race-free (run
// under -race in CI) and agree across goroutines.
func TestFingerprintConcurrent(t *testing.T) {
	f := workload.RandomSized(1, 300)
	want := f.Clone().Fingerprint()
	var wg sync.WaitGroup
	got := make([]ir.Fingerprint, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = f.Fingerprint()
		}(i)
	}
	wg.Wait()
	for i, fp := range got {
		if fp != want {
			t.Fatalf("goroutine %d: fingerprint %v != %v", i, fp, want)
		}
	}
}
