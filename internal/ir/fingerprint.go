package ir

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
)

// Fingerprint is a content address for a function: the SHA-256 of its
// canonical printed form with the function name elided. Two functions with
// equal fingerprints are structurally identical — same blocks, labels, trip
// counts, instructions, operands, virtual-register classes and allocator
// state — and therefore compile to identical results under identical
// options, which is what lets the compile cache (internal/compilecache)
// dedup the repeated kernels of the workload suites even when they appear
// under different symbol names.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as hex (shortened for diagnostics).
func (fp Fingerprint) String() string { return hex.EncodeToString(fp[:8]) }

// fpState is one immutable (generation, fingerprint) pair. Func caches the
// pair behind an atomic pointer so concurrent Fingerprint calls on a shared
// function — the sweep drivers compile the same input function under many
// (bank, method) settings in parallel — stay race-free: both goroutines
// compute the same value and the losing Store is harmless.
type fpState struct {
	gen uint64
	fp  Fingerprint
}

// Fingerprint returns the function's content fingerprint, computing and
// caching it on first use. The cache is keyed by the IR mutation generation
// (Generation): any mutating builder or transform entry point invalidates it
// the same way it invalidates the analysis cache, so a stale value can never
// be returned. Safe for concurrent use as long as the function itself is not
// being mutated concurrently (the same contract every analysis has).
func (f *Func) Fingerprint() Fingerprint {
	if s := f.fpCache.Load(); s != nil && s.gen == f.gen {
		return s.fp
	}
	h := sha256.New()
	writeCanonical(h, f)
	s := &fpState{gen: f.gen}
	h.Sum(s.fp[:0])
	f.fpCache.Store(s)
	return s.fp
}

// writeCanonical streams the canonical form into h: the textual MIR format
// of Print with "func {" in place of "func @name {", followed by the
// virtual-register class table (use operands print without classes, so the
// table is not fully determined by the body) and the allocator-state fields
// that seed compilation (SpillSlots numbers new spill slots, NumFPRegs is
// carried by Clone).
func writeCanonical(h io.Writer, f *Func) {
	var sb strings.Builder
	sb.WriteString("func {\n")
	for _, b := range f.Blocks {
		sb.WriteString("  ")
		sb.WriteString(b.Name)
		sb.WriteByte(':')
		if b.TripCount != 0 {
			fmt.Fprintf(&sb, " !trip=%d", b.TripCount)
		}
		sb.WriteByte('\n')
		for _, in := range b.Instrs {
			sb.WriteString("    ")
			sb.WriteString(formatInstr(f, b, in))
			sb.WriteByte('\n')
		}
		// Flush per block to keep the builder small on large functions.
		io.WriteString(h, sb.String())
		sb.Reset()
	}
	sb.WriteString("}\nvregs:")
	for _, v := range f.VRegs {
		sb.WriteByte(' ')
		sb.WriteString(v.Class.String())
	}
	fmt.Fprintf(&sb, "\nfpregs=%d spillslots=%d\n", f.NumFPRegs, f.SpillSlots)
	io.WriteString(h, sb.String())
}
