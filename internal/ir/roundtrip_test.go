package ir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomFunc builds a random but well-formed function: straight-line
// segments, optional loops, a mix of every opcode family.
func randomFunc(rng *rand.Rand) *Func {
	b := NewBuilder("fuzz")
	base := b.IConst(0)
	var fpVals []Reg
	var gprVals []Reg
	fp := func() Reg {
		if len(fpVals) == 0 || rng.Float64() < 0.3 {
			v := b.FConst(rng.Float64() * 10)
			fpVals = append(fpVals, v)
			return v
		}
		return fpVals[rng.Intn(len(fpVals))]
	}
	gpr := func() Reg {
		if len(gprVals) == 0 || rng.Float64() < 0.3 {
			v := b.IConst(int64(rng.Intn(100)))
			gprVals = append(gprVals, v)
			return v
		}
		return gprVals[rng.Intn(len(gprVals))]
	}
	emit := func() {
		switch rng.Intn(12) {
		case 0:
			fpVals = append(fpVals, b.FAdd(fp(), fp()))
		case 1:
			fpVals = append(fpVals, b.FMul(fp(), fp()))
		case 2:
			fpVals = append(fpVals, b.FSub(fp(), fp()))
		case 3:
			fpVals = append(fpVals, b.FMin(fp(), fp()))
		case 4:
			fpVals = append(fpVals, b.FMA(fp(), fp(), fp()))
		case 5:
			fpVals = append(fpVals, b.FNeg(fp()))
		case 6:
			fpVals = append(fpVals, b.FLoad(base, int64(rng.Intn(32))))
		case 7:
			b.FStore(fp(), base, int64(rng.Intn(32)))
		case 8:
			gprVals = append(gprVals, b.IAdd(gpr(), gpr()))
		case 9:
			gprVals = append(gprVals, b.IAddI(gpr(), int64(rng.Intn(16))))
		case 10:
			gprVals = append(gprVals, b.IMulI(gpr(), int64(1+rng.Intn(4))))
		case 11:
			fpVals = append(fpVals, b.FMov(fp()))
		}
	}
	n := 3 + rng.Intn(15)
	for i := 0; i < n; i++ {
		emit()
		if rng.Float64() < 0.05 {
			b.Call()
		}
	}
	if rng.Float64() < 0.7 {
		b.Loop(int64(2+rng.Intn(6)), 1, func(Reg) {
			m := 1 + rng.Intn(8)
			for i := 0; i < m; i++ {
				emit()
			}
		})
	}
	b.FStore(fp(), base, 40)
	b.Ret()
	return b.Func()
}

// quick-check: print -> parse -> print is a fixpoint and the parsed
// function verifies, for arbitrary generated functions.
func TestPrintParseRoundTripQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randomFunc(rng)
		text := Print(f)
		g, err := Parse(text)
		if err != nil {
			t.Logf("parse failed for seed %d: %v\n%s", seed, err, text)
			return false
		}
		if err := g.Verify(); err != nil {
			t.Logf("verify failed for seed %d: %v", seed, err)
			return false
		}
		return Print(g) == text
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// quick-check: Clone is a deep copy whose printout matches the original.
func TestCloneRoundTripQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randomFunc(rng)
		c := f.Clone()
		if Print(c) != Print(f) {
			return false
		}
		// Mutate the clone; the original must not change.
		before := Print(f)
		for _, b := range c.Blocks {
			for _, in := range b.Instrs {
				in.Imm++
			}
		}
		return Print(f) == before
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
