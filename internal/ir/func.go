package ir

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Instr is a single machine instruction. Defs and Uses hold register
// operands in opcode-signature order; Imm/FImm hold immediates when the
// opcode carries one. Terminator targets live on the enclosing Block.
type Instr struct {
	Op   Op
	Defs []Reg
	Uses []Reg
	Imm  int64
	FImm float64
}

// Clone returns a deep copy of the instruction.
func (in *Instr) Clone() *Instr {
	cp := &Instr{Op: in.Op, Imm: in.Imm, FImm: in.FImm}
	cp.Defs = append([]Reg(nil), in.Defs...)
	cp.Uses = append([]Reg(nil), in.Uses...)
	return cp
}

// Def returns the single definition of the instruction, or NoReg if none.
func (in *Instr) Def() Reg {
	if len(in.Defs) == 0 {
		return NoReg
	}
	return in.Defs[0]
}

// FPUses returns the FP-class register uses of the instruction in operand
// order. These are the reads that can collide within a register bank.
func (in *Instr) FPUses() []Reg { return in.AppendFPUses(nil) }

// AppendFPUses appends the FP-class register uses of the instruction, in
// operand order, to out and returns the extended slice. Hot callers pass a
// reused buffer (out[:0]) so the per-instruction scan does not allocate.
func (in *Instr) AppendFPUses(out []Reg) []Reg {
	for i, u := range in.Uses {
		if in.Op.UseClass(i) == ClassFP {
			out = append(out, u)
		}
	}
	return out
}

// IsConflictRelevant reports whether the instruction reads two or more FP
// registers (paper §II-A definition).
func (in *Instr) IsConflictRelevant() bool { return in.Op.IsConflictRelevant() }

// Block is a basic block: a label, a straight-line instruction list whose
// last element is a terminator, and explicit successor links.
type Block struct {
	// ID is the block's dense index within its function.
	ID int
	// Name is the block label used by the textual format.
	Name string
	// Instrs is the instruction list; the last entry is a terminator.
	Instrs []*Instr
	// Succs are the successor blocks in terminator order
	// (CondBr: [taken, fallthrough]).
	Succs []*Block
	// Preds are the predecessor blocks (maintained by Func.RecomputePreds).
	Preds []*Block
	// TripCount is loop metadata: if this block is a natural-loop header,
	// the expected number of iterations of that loop per entry. Zero means
	// unknown (the cost model substitutes a default).
	TripCount int64
}

// Terminator returns the block's final instruction, or nil for an (invalid)
// empty block.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}

// InsertBefore inserts instruction in at position idx within the block.
func (b *Block) InsertBefore(idx int, in *Instr) {
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[idx+1:], b.Instrs[idx:])
	b.Instrs[idx] = in
}

// VRegInfo records per-virtual-register metadata.
type VRegInfo struct {
	// Class is the register class of the virtual register.
	Class Class
}

// Func is a single machine function: blocks in layout order (entry first)
// plus the virtual register table.
type Func struct {
	// Name is the function's symbol name.
	Name string
	// Blocks lists basic blocks in layout order; Blocks[0] is the entry.
	Blocks []*Block
	// VRegs is the virtual register table, indexed by VReg dense index.
	VRegs []VRegInfo

	// NumFPRegs is the size of the physical FP file this function is
	// allocated against (set by the allocator; informational).
	NumFPRegs int
	// SpillSlots is the number of spill slots the allocator created.
	SpillSlots int

	// gen is the IR mutation generation: it increments on every mutating
	// builder or transform entry point and keys the analysis cache
	// (internal/analysis). An analysis computed at one generation is stale
	// once the counter moves.
	gen uint64

	// fpCache holds the (generation, fingerprint) pair of the last
	// Fingerprint call (see fingerprint.go). Atomic because sweeps
	// fingerprint a shared input function from concurrent compile workers.
	fpCache atomic.Pointer[fpState]
}

// Generation returns the function's current IR mutation generation.
func (f *Func) Generation() uint64 { return f.gen }

// MarkMutated advances the IR mutation generation, invalidating any
// analysis cached against an earlier generation. Transform passes call it
// after rewriting the function in place; builder entry points that create
// registers or blocks call it implicitly.
func (f *Func) MarkMutated() { f.gen++ }

// NewFunc returns an empty function with the given name.
func NewFunc(name string) *Func { return &Func{Name: name} }

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NewVReg allocates a fresh virtual register of class c.
func (f *Func) NewVReg(c Class) Reg {
	f.MarkMutated()
	f.VRegs = append(f.VRegs, VRegInfo{Class: c})
	return VReg(len(f.VRegs) - 1)
}

// NewBlock appends a new empty block with the given label.
func (f *Func) NewBlock(name string) *Block {
	f.MarkMutated()
	b := &Block{ID: len(f.Blocks), Name: name}
	f.Blocks = append(f.Blocks, b)
	return b
}

// RegClass returns the class of any register operand: the table entry for
// virtual registers, the encoding-derived class for physical ones.
func (f *Func) RegClass(r Reg) Class {
	switch {
	case r.IsVirt():
		return f.VRegs[r.VirtIndex()].Class
	case r.IsGPR():
		return ClassGPR
	case r.IsFPR():
		return ClassFP
	default:
		return ClassNone
	}
}

// NumInstrs returns the total instruction count of the function.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// RecomputePreds rebuilds every block's predecessor list and reassigns dense
// block IDs in layout order. Passes that edit control flow call this before
// handing the function to analyses.
func (f *Func) RecomputePreds() {
	f.MarkMutated()
	for i, b := range f.Blocks {
		b.ID = i
		b.Preds = b.Preds[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}

// Clone returns a deep copy of the function (blocks, instructions and the
// vreg table). Succ/Pred links are remapped to the cloned blocks.
//
// The copy is built out of a handful of bulk slabs — one []Block, one
// []Instr, one operand []Reg, shared []*Instr and []*Block backing — instead
// of one allocation per instruction. Every sub-slice is cut with a
// three-index expression so its capacity ends at its own region: a later
// append (InsertBefore on a block, spill-code growth of an operand list)
// reallocates that slice instead of overwriting a neighbour's slab region.
// Clones feed the compile cache and escape compiles by design, so the slabs
// are always fresh heap, never scratch-arena memory.
func (f *Func) Clone() *Func {
	nf := &Func{
		Name:       f.Name,
		VRegs:      append([]VRegInfo(nil), f.VRegs...),
		NumFPRegs:  f.NumFPRegs,
		SpillSlots: f.SpillSlots,
		gen:        f.gen + 1,
	}
	nInstrs, nOps, nEdges := 0, 0, 0
	for _, b := range f.Blocks {
		nInstrs += len(b.Instrs)
		nEdges += len(b.Succs)
		for _, in := range b.Instrs {
			nOps += len(in.Defs) + len(in.Uses)
		}
	}
	blockSlab := make([]Block, len(f.Blocks))
	instrSlab := make([]Instr, nInstrs)
	ptrSlab := make([]*Instr, nInstrs)
	opSlab := make([]Reg, nOps)
	edgeSlab := make([]*Block, 2*nEdges) // succs + preds
	nf.Blocks = make([]*Block, len(f.Blocks))
	idx := make(map[*Block]*Block, len(f.Blocks))
	io, oo, eo := 0, 0, 0
	for i, b := range f.Blocks {
		nb := &blockSlab[i]
		nb.ID = i
		nb.Name = b.Name
		nb.TripCount = b.TripCount
		nb.Instrs = ptrSlab[io : io : io+len(b.Instrs)]
		for _, in := range b.Instrs {
			cp := &instrSlab[io]
			cp.Op, cp.Imm, cp.FImm = in.Op, in.Imm, in.FImm
			cp.Defs = opSlab[oo : oo : oo+len(in.Defs)]
			cp.Defs = append(cp.Defs, in.Defs...)
			oo += len(in.Defs)
			cp.Uses = opSlab[oo : oo : oo+len(in.Uses)]
			cp.Uses = append(cp.Uses, in.Uses...)
			oo += len(in.Uses)
			nb.Instrs = append(nb.Instrs, cp)
			io++
		}
		nf.Blocks[i] = nb
		idx[b] = nb
	}
	for _, b := range f.Blocks {
		nb := idx[b]
		nb.Succs = edgeSlab[eo : eo : eo+len(b.Succs)]
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, idx[s])
		}
		eo += len(b.Succs)
	}
	// Fill Preds from the remaining slab region with exact capacities, then
	// let RecomputePreds populate them (it appends into the zero-length
	// cap'd sub-slices without reallocating).
	npreds := make(map[*Block]int, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			npreds[s]++
		}
	}
	for _, b := range f.Blocks {
		nb := idx[b]
		n := npreds[b]
		nb.Preds = edgeSlab[eo : eo : eo+n]
		eo += n
	}
	nf.RecomputePreds()
	return nf
}

// Verify checks structural invariants: operand counts and classes match
// opcode signatures, terminators appear exactly at block ends, successor
// counts match terminators, virtual register indexes are in range, and
// loop trip-count metadata is valid. Failures are *Diag values carrying
// the rule ID and the function/block/instruction location.
func (f *Func) Verify() error {
	if len(f.Blocks) == 0 {
		return Diagf(RuleWellFormed, f.Name, "", -1, "function has no blocks")
	}
	for _, b := range f.Blocks {
		if b.TripCount < 0 {
			return Diagf(RuleLoopMeta, f.Name, b.Name, -1,
				"negative loop trip count %d", b.TripCount)
		}
		if b.TripCount != 0 && len(b.Preds) > 0 && !hasBackedge(b) {
			return Diagf(RuleLoopMeta, f.Name, b.Name, -1,
				"trip count %d on a block with predecessors but no back edge (not a loop header)",
				b.TripCount)
		}
		if len(b.Instrs) == 0 {
			return Diagf(RuleWellFormed, f.Name, b.Name, -1, "empty block")
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				return Diagf(RuleWellFormed, f.Name, b.Name, i,
					"terminator %s at position %d/%d", in.Op, i, len(b.Instrs))
			}
			if len(in.Defs) != in.Op.NumDefs() {
				return Diagf(RuleWellFormed, f.Name, b.Name, i,
					"%s has %d defs, want %d", in.Op, len(in.Defs), in.Op.NumDefs())
			}
			if len(in.Uses) != in.Op.NumUses() {
				return Diagf(RuleWellFormed, f.Name, b.Name, i,
					"%s has %d uses, want %d", in.Op, len(in.Uses), in.Op.NumUses())
			}
			for _, d := range in.Defs {
				if err := f.checkOperand(d, in.Op.DefClass()); err != nil {
					return Diagf(RuleWellFormed, f.Name, b.Name, i, "%s def: %v", in.Op, err)
				}
			}
			for j, u := range in.Uses {
				if err := f.checkOperand(u, in.Op.UseClass(j)); err != nil {
					return Diagf(RuleWellFormed, f.Name, b.Name, i, "%s use %d: %v", in.Op, j, err)
				}
			}
			if isLast && len(b.Succs) != in.Op.NumSuccs() {
				return Diagf(RuleWellFormed, f.Name, b.Name, i,
					"%s has %d successors, want %d", in.Op, len(b.Succs), in.Op.NumSuccs())
			}
		}
	}
	return nil
}

// hasBackedge reports whether any predecessor of b appears at or after b in
// layout order — the shape of every loop header the builders, the parser
// (labels appear before their back branches) and the loop-splitting
// transform produce. A block carrying a trip count must look like a loop
// header under this layout test.
func hasBackedge(b *Block) bool {
	for _, p := range b.Preds {
		if p.ID >= b.ID {
			return true
		}
	}
	return false
}

func (f *Func) checkOperand(r Reg, want Class) error {
	if r == NoReg {
		return fmt.Errorf("missing register operand")
	}
	if r.IsVirt() && r.VirtIndex() >= len(f.VRegs) {
		return fmt.Errorf("virtual register %v out of range (%d vregs)", r, len(f.VRegs))
	}
	if got := f.RegClass(r); got != want {
		return fmt.Errorf("register %v has class %v, want %v", r, got, want)
	}
	return nil
}

// Module is a named collection of functions, the unit the workload
// generators emit and the pipeline consumes.
type Module struct {
	// Name is the module (translation unit) name.
	Name string
	// Funcs maps function name to function.
	Funcs map[string]*Func
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, Funcs: make(map[string]*Func)}
}

// Add inserts f into the module, replacing any previous function of the
// same name.
func (m *Module) Add(f *Func) { m.Funcs[f.Name] = f }

// FuncNames returns the function names in sorted order, for deterministic
// iteration.
func (m *Module) FuncNames() []string {
	names := make([]string, 0, len(m.Funcs))
	for n := range m.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SortedFuncs returns the functions ordered by name.
func (m *Module) SortedFuncs() []*Func {
	names := m.FuncNames()
	out := make([]*Func, len(names))
	for i, n := range names {
		out[i] = m.Funcs[n]
	}
	return out
}

// Verify verifies every function in the module.
func (m *Module) Verify() error {
	for _, f := range m.SortedFuncs() {
		if err := f.Verify(); err != nil {
			return err
		}
	}
	return nil
}
