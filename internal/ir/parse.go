package ir

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual MIR format produced by Print and returns the
// function. The grammar is line-oriented:
//
//	func @name {
//	  label: [!trip=N]
//	    [%d:class[, ...] =] op [operand[, operand...]] [; succs: a, b]
//	  }
//
// Operands are virtual registers (%N), physical registers (xN, fN), integer
// immediates, or float immediates, validated against the opcode signature.
func Parse(src string) (*Func, error) {
	p := &parser{sc: bufio.NewScanner(strings.NewReader(src))}
	p.sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	f, err := p.parseFunc()
	if err != nil {
		return nil, fmt.Errorf("ir: parse line %d: %w", p.line, err)
	}
	return f, nil
}

// ParseModule reads a module: a "module NAME" header followed by functions.
func ParseModule(src string) (*Module, error) {
	lines := strings.Split(src, "\n")
	name := "m"
	var body []string
	for _, l := range lines {
		t := strings.TrimSpace(l)
		if strings.HasPrefix(t, "module ") {
			name = strings.TrimSpace(strings.TrimPrefix(t, "module "))
			continue
		}
		body = append(body, l)
	}
	m := NewModule(name)
	rest := strings.Join(body, "\n")
	for {
		idx := strings.Index(rest, "func @")
		if idx < 0 {
			break
		}
		end := strings.Index(rest[idx:], "\n}")
		if end < 0 {
			return nil, fmt.Errorf("ir: unterminated function in module %s", name)
		}
		chunk := rest[idx : idx+end+2]
		f, err := Parse(chunk)
		if err != nil {
			return nil, err
		}
		m.Add(f)
		rest = rest[idx+end+2:]
	}
	return m, nil
}

// Parser-side operand bounds. The Reg encoding itself admits indices up to
// 2^30, but untrusted textual input (the daemon's request path) must not be
// able to grow the vreg table without limit or reach the encoding helpers'
// panics — a bad request returns an error, never kills the process.
const (
	// maxParseVReg bounds virtual register indices in parsed source.
	maxParseVReg = 1 << 20
	// maxParseFPR bounds physical FP register indices in parsed source
	// (the largest paper configuration is 1024 registers).
	maxParseFPR = 1 << 20
)

type parser struct {
	sc   *bufio.Scanner
	line int
	f    *Func
	// pending successor names per block, resolved after all labels are seen.
	succNames map[*Block][]string
	blocks    map[string]*Block
}

func (p *parser) next() (string, bool) {
	for p.sc.Scan() {
		p.line++
		l := strings.TrimSpace(p.sc.Text())
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		return l, true
	}
	return "", false
}

func (p *parser) parseFunc() (*Func, error) {
	head, ok := p.next()
	if !ok {
		return nil, fmt.Errorf("empty input")
	}
	if !strings.HasPrefix(head, "func @") || !strings.HasSuffix(head, "{") {
		return nil, fmt.Errorf("expected 'func @name {', got %q", head)
	}
	name := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(head, "func @"), "{"))
	p.f = NewFunc(name)
	p.succNames = make(map[*Block][]string)
	p.blocks = make(map[string]*Block)

	var cur *Block
	for {
		l, ok := p.next()
		if !ok {
			return nil, fmt.Errorf("missing closing brace")
		}
		if l == "}" {
			break
		}
		if isLabelLine(l) {
			lbl, trip, err := parseLabel(l)
			if err != nil {
				return nil, err
			}
			cur = p.getBlock(lbl)
			cur.TripCount = trip
			// Move the block into layout order position.
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("instruction before any label: %q", l)
		}
		in, succs, err := p.parseInstr(l)
		if err != nil {
			return nil, err
		}
		cur.Instrs = append(cur.Instrs, in)
		if len(succs) > 0 {
			p.succNames[cur] = succs
		}
	}
	// Resolve successors in layout order. p.succNames is keyed by block;
	// ranging over the map directly would pick which "unknown successor"
	// error wins nondeterministically — the bug class the mapiter lint
	// flags — so walk the block list and look each block up instead.
	for _, b := range p.f.Blocks {
		for _, n := range p.succNames[b] {
			s, ok := p.blocks[n]
			if !ok {
				return nil, fmt.Errorf("unknown successor block %q", n)
			}
			b.Succs = append(b.Succs, s)
		}
	}
	p.f.RecomputePreds()
	if err := p.f.Verify(); err != nil {
		return nil, err
	}
	return p.f, nil
}

func isLabelLine(l string) bool {
	// "name:" optionally followed by !trip=N; instruction lines never end
	// with ':' before a possible comment.
	head := l
	if i := strings.Index(l, "!"); i >= 0 {
		head = strings.TrimSpace(l[:i])
	}
	return strings.HasSuffix(head, ":") && !strings.Contains(head, " ")
}

func parseLabel(l string) (name string, trip int64, err error) {
	rest := l
	if i := strings.Index(l, "!"); i >= 0 {
		tag := strings.TrimSpace(l[i:])
		rest = strings.TrimSpace(l[:i])
		if !strings.HasPrefix(tag, "!trip=") {
			return "", 0, fmt.Errorf("unknown block metadata %q", tag)
		}
		trip, err = strconv.ParseInt(strings.TrimPrefix(tag, "!trip="), 10, 64)
		if err != nil {
			return "", 0, fmt.Errorf("bad trip count in %q: %v", l, err)
		}
	}
	return strings.TrimSuffix(rest, ":"), trip, nil
}

func (p *parser) getBlock(name string) *Block {
	if b, ok := p.blocks[name]; ok {
		return b
	}
	b := p.f.NewBlock(name)
	p.blocks[name] = b
	return b
}

func (p *parser) parseInstr(l string) (*Instr, []string, error) {
	var succs []string
	if i := strings.Index(l, "; succs:"); i >= 0 {
		for _, s := range strings.Split(l[i+len("; succs:"):], ",") {
			succs = append(succs, strings.TrimSpace(s))
		}
		l = strings.TrimSpace(l[:i])
	} else if i := strings.Index(l, ";"); i >= 0 {
		l = strings.TrimSpace(l[:i])
	}

	in := &Instr{}
	lhs, rhs := "", l
	if i := strings.Index(l, " = "); i >= 0 {
		lhs, rhs = strings.TrimSpace(l[:i]), strings.TrimSpace(l[i+3:])
	}
	fields := strings.SplitN(rhs, " ", 2)
	op, ok := OpByName(fields[0])
	if !ok {
		return nil, nil, fmt.Errorf("unknown opcode %q", fields[0])
	}
	in.Op = op

	// Defs.
	if lhs != "" {
		for _, d := range strings.Split(lhs, ",") {
			r, err := p.parseDefReg(strings.TrimSpace(d), op.DefClass())
			if err != nil {
				return nil, nil, err
			}
			in.Defs = append(in.Defs, r)
		}
	}

	// Uses and immediates.
	var args []string
	if len(fields) == 2 {
		for _, a := range strings.Split(fields[1], ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	want := op.NumUses()
	if len(args) < want {
		return nil, nil, fmt.Errorf("%s: %d operands, need at least %d register uses", op, len(args), want)
	}
	for i := 0; i < want; i++ {
		r, err := p.parseReg(args[i])
		if err != nil {
			return nil, nil, err
		}
		in.Uses = append(in.Uses, r)
	}
	rest := args[want:]
	if op.HasImm() {
		if len(rest) == 0 {
			return nil, nil, fmt.Errorf("%s: missing immediate", op)
		}
		v, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: bad immediate %q: %v", op, rest[0], err)
		}
		in.Imm = v
		rest = rest[1:]
	}
	if op.HasFImm() {
		if len(rest) == 0 {
			return nil, nil, fmt.Errorf("%s: missing float immediate", op)
		}
		v, err := strconv.ParseFloat(rest[0], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: bad float immediate %q: %v", op, rest[0], err)
		}
		in.FImm = v
		rest = rest[1:]
	}
	// Terminators may name their successors inline ("br body") instead of
	// (or in addition to) the "; succs:" annotation.
	if op.IsTerminator() && len(succs) == 0 && len(rest) > 0 {
		succs, rest = rest, nil
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("%s: %d extra operands", op, len(rest))
	}
	return in, succs, nil
}

// parseDefReg parses a definition operand "%N:class" / "fN" / "xN", creating
// vreg table entries as needed.
func (p *parser) parseDefReg(s string, want Class) (Reg, error) {
	if strings.HasPrefix(s, "%") {
		body := s[1:]
		cls := want
		if i := strings.Index(body, ":"); i >= 0 {
			switch body[i+1:] {
			case "gpr":
				cls = ClassGPR
			case "fp":
				cls = ClassFP
			default:
				return NoReg, fmt.Errorf("unknown class %q", body[i+1:])
			}
			body = body[:i]
		}
		idx, err := strconv.Atoi(body)
		if err != nil {
			return NoReg, fmt.Errorf("bad virtual register %q: %v", s, err)
		}
		if idx < 0 || idx > maxParseVReg {
			return NoReg, fmt.Errorf("virtual register index %d out of range [0, %d]", idx, maxParseVReg)
		}
		for len(p.f.VRegs) <= idx {
			p.f.VRegs = append(p.f.VRegs, VRegInfo{Class: ClassNone})
		}
		if p.f.VRegs[idx].Class == ClassNone {
			p.f.VRegs[idx].Class = cls
		}
		return VReg(idx), nil
	}
	return p.parseReg(s)
}

func (p *parser) parseReg(s string) (Reg, error) {
	switch {
	case strings.HasPrefix(s, "%"):
		body := s[1:]
		if i := strings.Index(body, ":"); i >= 0 {
			body = body[:i]
		}
		idx, err := strconv.Atoi(body)
		if err != nil {
			return NoReg, fmt.Errorf("bad virtual register %q: %v", s, err)
		}
		if idx < 0 || idx > maxParseVReg {
			return NoReg, fmt.Errorf("virtual register index %d out of range [0, %d]", idx, maxParseVReg)
		}
		for len(p.f.VRegs) <= idx {
			p.f.VRegs = append(p.f.VRegs, VRegInfo{Class: ClassNone})
		}
		return VReg(idx), nil
	case strings.HasPrefix(s, "x"):
		idx, err := strconv.Atoi(s[1:])
		if err != nil || idx < 0 || idx >= NumGPR {
			return NoReg, fmt.Errorf("bad GPR %q", s)
		}
		return XReg(idx), nil
	case strings.HasPrefix(s, "f"):
		idx, err := strconv.Atoi(s[1:])
		if err != nil || idx < 0 || idx > maxParseFPR {
			return NoReg, fmt.Errorf("bad FP register %q", s)
		}
		return FReg(idx), nil
	default:
		return NoReg, fmt.Errorf("bad register operand %q", s)
	}
}
