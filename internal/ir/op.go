package ir

// Op is an MIR opcode. The set is deliberately small: integer ops for
// addressing and loop control, floating-point ops that constitute the
// conflict-relevant workload, memory access, spill pseudo-ops and control
// flow.
type Op uint8

const (
	// OpNop does nothing; used as a scheduling placeholder.
	OpNop Op = iota

	// --- integer (GPR class) ---

	// OpIConst defines a GPR with the immediate Imm.
	OpIConst
	// OpIMov copies Uses[0] into Defs[0] (GPR).
	OpIMov
	// OpIAdd defines Defs[0] = Uses[0] + Uses[1].
	OpIAdd
	// OpIAddI defines Defs[0] = Uses[0] + Imm.
	OpIAddI
	// OpIMul defines Defs[0] = Uses[0] * Uses[1].
	OpIMul
	// OpIMulI defines Defs[0] = Uses[0] * Imm.
	OpIMulI
	// OpICmpLt defines Defs[0] = 1 if Uses[0] < Uses[1] else 0.
	OpICmpLt
	// OpICmpLtI defines Defs[0] = 1 if Uses[0] < Imm else 0.
	OpICmpLtI

	// --- floating point (FP class) ---

	// OpFConst defines an FP register with the immediate FImm.
	OpFConst
	// OpFMov copies Uses[0] into Defs[0] (FP). Coalescing targets this op.
	OpFMov
	// OpFNeg defines Defs[0] = -Uses[0].
	OpFNeg
	// OpFAdd defines Defs[0] = Uses[0] + Uses[1].
	OpFAdd
	// OpFSub defines Defs[0] = Uses[0] - Uses[1].
	OpFSub
	// OpFMul defines Defs[0] = Uses[0] * Uses[1].
	OpFMul
	// OpFDiv defines Defs[0] = Uses[0] / Uses[1].
	OpFDiv
	// OpFMin defines Defs[0] = min(Uses[0], Uses[1]).
	OpFMin
	// OpFMax defines Defs[0] = max(Uses[0], Uses[1]).
	OpFMax
	// OpFMA defines Defs[0] = Uses[0]*Uses[1] + Uses[2] (fused multiply-add;
	// three FP reads make it the most conflict-prone op).
	OpFMA

	// --- memory ---

	// OpFLoad defines Defs[0] (FP) = mem[Uses[0] (GPR) + Imm].
	OpFLoad
	// OpFStore stores Uses[0] (FP) to mem[Uses[1] (GPR) + Imm].
	OpFStore

	// --- spill pseudo-ops (inserted by the allocator; they access a
	// dedicated spill area addressed by Imm and never cause bank reads of
	// two FP operands, so they are conflict-irrelevant) ---

	// OpFSpill stores Uses[0] (FP) to spill slot Imm.
	OpFSpill
	// OpFReload defines Defs[0] (FP) from spill slot Imm.
	OpFReload
	// OpISpill stores Uses[0] (GPR) to spill slot Imm.
	OpISpill
	// OpIReload defines Defs[0] (GPR) from spill slot Imm.
	OpIReload

	// OpCall invokes an external routine: it reads and writes no program
	// memory in this model, but clobbers every caller-saved register
	// (CallerSavedFPR/CallerSavedGPR). Values live across a call must sit
	// in callee-saved registers or spill — the pressure source behind
	// spilling even on huge register files.
	OpCall

	// --- control flow (always the last instruction of a block) ---

	// OpBr jumps to Block.Succs[0].
	OpBr
	// OpCondBr jumps to Block.Succs[0] if Uses[0] != 0, else Block.Succs[1].
	OpCondBr
	// OpRet returns from the function.
	OpRet

	opCount
)

// Valid reports whether o is a defined opcode. Decoders of externally
// sourced IR (the on-disk Result codec) use it to reject corrupted input
// before an out-of-range opcode can reach the name and signature tables.
func (o Op) Valid() bool { return o < opCount }

var opNames = [opCount]string{
	OpNop:     "nop",
	OpIConst:  "iconst",
	OpIMov:    "imov",
	OpIAdd:    "iadd",
	OpIAddI:   "iaddi",
	OpIMul:    "imul",
	OpIMulI:   "imuli",
	OpICmpLt:  "icmplt",
	OpICmpLtI: "icmplti",
	OpFConst:  "fconst",
	OpFMov:    "fmov",
	OpFNeg:    "fneg",
	OpFAdd:    "fadd",
	OpFSub:    "fsub",
	OpFMul:    "fmul",
	OpFDiv:    "fdiv",
	OpFMin:    "fmin",
	OpFMax:    "fmax",
	OpFMA:     "fma",
	OpFLoad:   "fload",
	OpFStore:  "fstore",
	OpFSpill:  "fspill",
	OpFReload: "freload",
	OpISpill:  "ispill",
	OpIReload: "ireload",
	OpCall:    "call",
	OpBr:      "br",
	OpCondBr:  "condbr",
	OpRet:     "ret",
}

// String returns the mnemonic used in textual MIR.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// OpByName resolves a mnemonic to its opcode. The second result is false for
// unknown mnemonics.
func OpByName(name string) (Op, bool) {
	for op, n := range opNames {
		if n == name {
			return Op(op), true
		}
	}
	return OpNop, false
}

// opSig describes the operand signature of an opcode.
type opSig struct {
	defs, uses  int
	defClass    Class
	useClasses  []Class
	hasImm      bool
	hasFImm     bool
	terminator  bool
	numSuccs    int
	commutative bool
}

var opSigs = [opCount]opSig{
	OpNop:     {},
	OpIConst:  {defs: 1, defClass: ClassGPR, hasImm: true},
	OpIMov:    {defs: 1, uses: 1, defClass: ClassGPR, useClasses: []Class{ClassGPR}},
	OpIAdd:    {defs: 1, uses: 2, defClass: ClassGPR, useClasses: []Class{ClassGPR, ClassGPR}, commutative: true},
	OpIAddI:   {defs: 1, uses: 1, defClass: ClassGPR, useClasses: []Class{ClassGPR}, hasImm: true},
	OpIMul:    {defs: 1, uses: 2, defClass: ClassGPR, useClasses: []Class{ClassGPR, ClassGPR}, commutative: true},
	OpIMulI:   {defs: 1, uses: 1, defClass: ClassGPR, useClasses: []Class{ClassGPR}, hasImm: true},
	OpICmpLt:  {defs: 1, uses: 2, defClass: ClassGPR, useClasses: []Class{ClassGPR, ClassGPR}},
	OpICmpLtI: {defs: 1, uses: 1, defClass: ClassGPR, useClasses: []Class{ClassGPR}, hasImm: true},
	OpFConst:  {defs: 1, defClass: ClassFP, hasFImm: true},
	OpFMov:    {defs: 1, uses: 1, defClass: ClassFP, useClasses: []Class{ClassFP}},
	OpFNeg:    {defs: 1, uses: 1, defClass: ClassFP, useClasses: []Class{ClassFP}},
	OpFAdd:    {defs: 1, uses: 2, defClass: ClassFP, useClasses: []Class{ClassFP, ClassFP}, commutative: true},
	OpFSub:    {defs: 1, uses: 2, defClass: ClassFP, useClasses: []Class{ClassFP, ClassFP}},
	OpFMul:    {defs: 1, uses: 2, defClass: ClassFP, useClasses: []Class{ClassFP, ClassFP}, commutative: true},
	OpFDiv:    {defs: 1, uses: 2, defClass: ClassFP, useClasses: []Class{ClassFP, ClassFP}},
	OpFMin:    {defs: 1, uses: 2, defClass: ClassFP, useClasses: []Class{ClassFP, ClassFP}, commutative: true},
	OpFMax:    {defs: 1, uses: 2, defClass: ClassFP, useClasses: []Class{ClassFP, ClassFP}, commutative: true},
	OpFMA:     {defs: 1, uses: 3, defClass: ClassFP, useClasses: []Class{ClassFP, ClassFP, ClassFP}},
	OpFLoad:   {defs: 1, uses: 1, defClass: ClassFP, useClasses: []Class{ClassGPR}, hasImm: true},
	OpFStore:  {uses: 2, useClasses: []Class{ClassFP, ClassGPR}, hasImm: true},
	OpFSpill:  {uses: 1, useClasses: []Class{ClassFP}, hasImm: true},
	OpFReload: {defs: 1, defClass: ClassFP, hasImm: true},
	OpISpill:  {uses: 1, useClasses: []Class{ClassGPR}, hasImm: true},
	OpIReload: {defs: 1, defClass: ClassGPR, hasImm: true},
	OpCall:    {},
	OpBr:      {terminator: true, numSuccs: 1},
	OpCondBr:  {uses: 1, useClasses: []Class{ClassGPR}, terminator: true, numSuccs: 2},
	OpRet:     {terminator: true},
}

// NumDefs returns the number of register definitions of the opcode.
func (o Op) NumDefs() int { return opSigs[o].defs }

// NumUses returns the number of register uses of the opcode.
func (o Op) NumUses() int { return opSigs[o].uses }

// DefClass returns the register class of the opcode's definition.
func (o Op) DefClass() Class { return opSigs[o].defClass }

// UseClass returns the register class of use operand i.
func (o Op) UseClass(i int) Class { return opSigs[o].useClasses[i] }

// HasImm reports whether the opcode carries an integer immediate.
func (o Op) HasImm() bool { return opSigs[o].hasImm }

// HasFImm reports whether the opcode carries a floating-point immediate.
func (o Op) HasFImm() bool { return opSigs[o].hasFImm }

// IsTerminator reports whether the opcode terminates a basic block.
func (o Op) IsTerminator() bool { return opSigs[o].terminator }

// NumSuccs returns the number of successor blocks the terminator requires.
func (o Op) NumSuccs() int { return opSigs[o].numSuccs }

// IsCommutative reports whether the opcode's two uses may be swapped.
func (o Op) IsCommutative() bool { return opSigs[o].commutative }

// IsCopy reports whether the opcode is a register-to-register copy
// (coalescing candidate).
func (o Op) IsCopy() bool { return o == OpFMov || o == OpIMov }

// FPUseCount returns the number of FP-class register reads of the opcode.
// An instruction with two or more FP reads is conflict-relevant: if those
// reads land in the same bank of a single-read-port register file, the
// hardware must serialize them (paper §II-A).
func (o Op) FPUseCount() int {
	n := 0
	for _, c := range opSigs[o].useClasses {
		if c == ClassFP {
			n++
		}
	}
	return n
}

// IsConflictRelevant reports whether the opcode reads two or more FP
// registers and therefore can trigger a bank conflict.
func (o Op) IsConflictRelevant() bool { return o.FPUseCount() >= 2 }

// IsVectorALU reports whether the opcode is a DSA vector ALU operation whose
// FP operands are subject to the subgroup alignment constraint (paper
// §III-C). Register copies are excluded: the hardware moves data between
// subgroups via copies, which is exactly how SDG-based splitting breaks
// oversized alignment groups (Figures 8/9).
func (o Op) IsVectorALU() bool {
	switch o {
	case OpFNeg, OpFAdd, OpFSub, OpFMul, OpFDiv, OpFMin, OpFMax, OpFMA:
		return true
	}
	return false
}
