package ir

import (
	"errors"
	"strings"
	"testing"
)

func TestDiagErrorFormat(t *testing.T) {
	d := Diagf(RuleWellFormed, "f", "loop", 3, "bad %s", "operand")
	want := "V001-wellformed: f/loop#3: bad operand"
	if d.Error() != want {
		t.Errorf("Error() = %q, want %q", d.Error(), want)
	}
	// Block- and function-level diagnostics omit the absent parts.
	if got := Diagf(RuleLoopMeta, "f", "loop", -1, "m").Error(); got != "V003-loop-metadata: f/loop: m" {
		t.Errorf("block-level Error() = %q", got)
	}
	if got := Diagf(RuleWellFormed, "f", "", -1, "m").Error(); got != "V001-wellformed: f: m" {
		t.Errorf("func-level Error() = %q", got)
	}
}

func TestVerifyReturnsDiag(t *testing.T) {
	f := NewFunc("bad")
	f.NewBlock("entry") // empty block
	err := f.Verify()
	var d *Diag
	if !errors.As(err, &d) {
		t.Fatalf("Verify error %T is not a *Diag", err)
	}
	if d.Rule != RuleWellFormed || d.Func != "bad" || d.Block != "entry" {
		t.Errorf("diag = %+v, want V001 at bad/entry", d)
	}
	if !strings.Contains(err.Error(), "empty block") {
		t.Errorf("message lost the 'empty block' phrasing: %q", err)
	}
}

func TestVerifyTripCountMetadata(t *testing.T) {
	t.Run("negative trip", func(t *testing.T) {
		f := buildSAXPY(8)
		f.Blocks[1].TripCount = -4
		err := f.Verify()
		var d *Diag
		if !errors.As(err, &d) || d.Rule != RuleLoopMeta {
			t.Fatalf("want %s diag, got %v", RuleLoopMeta, err)
		}
	})
	t.Run("trip on non-header", func(t *testing.T) {
		f := buildSAXPY(8)
		// The exit block has predecessors but no back edge: a trip count
		// there is stale or misattached metadata.
		f.Blocks[2].TripCount = 9
		err := f.Verify()
		var d *Diag
		if !errors.As(err, &d) || d.Rule != RuleLoopMeta {
			t.Fatalf("want %s diag, got %v", RuleLoopMeta, err)
		}
	})
	t.Run("valid header trip accepted", func(t *testing.T) {
		f := buildSAXPY(8)
		if err := f.Verify(); err != nil {
			t.Fatalf("Verify: %v", err)
		}
	})
	t.Run("parser rejects negative trip", func(t *testing.T) {
		src := "func @f {\n entry:\n  br body\n body: !trip=-3\n  condbr x1, body, done\n done:\n  ret\n}"
		if _, err := Parse(src); err == nil {
			t.Fatal("Parse accepted a negative trip count")
		}
	})
}
