package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

const kernelMIR = `func @axpy {
 entry:
  x1 = iconst 0
  %0:fp = fload x1, 0
  %1:fp = fload x1, 1
  %2:fp = fadd %0, %1
  fstore %2, x1, 2
  ret
}
`

const moduleMIR = `module pair
func @alpha {
 entry:
  x1 = iconst 0
  %0:fp = fload x1, 0
  %1:fp = fadd %0, %0
  fstore %1, x1, 1
  ret
}
func @beta {
 entry:
  x1 = iconst 0
  %0:fp = fload x1, 2
  %1:fp = fmul %0, %0
  fstore %1, x1, 3
  ret
}
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, req CompileRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func decodeError(t *testing.T, body []byte) errorResponse {
	t.Helper()
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error envelope: %v\nbody: %s", err, body)
	}
	return e
}

func TestCompileOK(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, Method: "bpc", EmitMIR: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var cr CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Func != "axpy" {
		t.Errorf("func = %q, want axpy", cr.Func)
	}
	if cr.Report.Instrs <= 0 {
		t.Errorf("report.instrs = %d, want > 0", cr.Report.Instrs)
	}
	if cr.MIR == "" || !strings.Contains(cr.MIR, "@axpy") {
		t.Errorf("emit_mir did not return allocated MIR: %q", cr.MIR)
	}
	if cr.WallNS <= 0 {
		t.Errorf("wall_ns = %d, want > 0", cr.WallNS)
	}
}

func TestCompileRawMIRWithQueryOptions(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/compile?method=bcr&simulate=true&regs=16&banks=2",
		"text/plain", strings.NewReader(kernelMIR))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if cr.Sim == nil || cr.Sim.Steps <= 0 {
		t.Fatalf("simulate=true did not attach sim results: %+v", cr.Sim)
	}
}

func TestCompileDeterministicAcrossRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, first := postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, EmitMIR: true})
	for i := 0; i < 3; i++ {
		_, again := postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, EmitMIR: true})
		var a, b CompileResponse
		if err := json.Unmarshal(first, &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(again, &b); err != nil {
			t.Fatal(err)
		}
		if a.MIR != b.MIR || a.Report != b.Report {
			t.Fatalf("request %d differs from first:\n%s\nvs\n%s", i, again, first)
		}
	}
}

func TestParseError400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: "func @x {\n entry:\n  %0 = bogus\n}\n"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Code != CodeParse {
		t.Errorf("code = %q, want %q", e.Code, CodeParse)
	}
}

func TestEmptyBody400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/compile", CompileRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Code != CodeBadRequest {
		t.Errorf("code = %q, want %q", e.Code, CodeBadRequest)
	}
}

func TestUnknownMethod400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, Method: "alchemy"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
}

func TestCompileError422(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// The pipeline rejects linear scan in subgroup mode — a well-formed
	// request the compiler itself refuses, i.e. the 422 path.
	resp, body := postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, Subgroups: 2, LinearScan: true})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422; body %s", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Code != CodeCompile {
		t.Errorf("code = %q, want %q", e.Code, CodeCompile)
	}
}

func TestMultiFuncOnSingleEndpoint400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: moduleMIR})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "/v1/compile/module") {
		t.Errorf("error should direct to the module endpoint: %s", body)
	}
}

func TestModuleEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/compile/module", CompileRequest{MIR: moduleMIR})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var mr ModuleResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Module != "pair" || len(mr.Funcs) != 2 {
		t.Fatalf("module %q with %d funcs, want pair with 2", mr.Module, len(mr.Funcs))
	}
	if mr.Funcs[0].Func != "alpha" || mr.Funcs[1].Func != "beta" {
		t.Errorf("funcs out of order: %s, %s", mr.Funcs[0].Func, mr.Funcs[1].Func)
	}
	if want := mr.Funcs[0].Report.Instrs + mr.Funcs[1].Report.Instrs; mr.Totals.Instrs != want {
		t.Errorf("totals.instrs = %d, want %d", mr.Totals.Instrs, want)
	}
}

func TestBodyTooLarge413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBody: 128})
	resp, body := postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: strings.Repeat("x", 4096)})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413; body %s", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Code != CodeTooLarge {
		t.Errorf("code = %q, want %q", e.Code, CodeTooLarge)
	}
}

func TestGetRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
}

// TestSaturation429 fills every in-flight slot and the whole queue, then
// asserts the next request is rejected with 429 + Retry-After rather than
// queued without bound.
func TestSaturation429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 1})

	// Occupy the only in-flight slot directly.
	s.slots <- struct{}{}
	defer func() { <-s.slots }()

	// One request may legitimately wait in the queue; park it with a long
	// deadline in the background.
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		resp, _ := http.Post(ts.URL+"/v1/compile?timeout_ms=3000", "text/plain", strings.NewReader(kernelMIR))
		if resp != nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, func() bool { return s.queued.Load() == 1 })

	resp, body := postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if e := decodeError(t, body); e.Code != CodeSaturated {
		t.Errorf("code = %q, want %q", e.Code, CodeSaturated)
	}
	if got := s.metrics.rejected.Load(); got < 1 {
		t.Errorf("rejected counter = %d, want >= 1", got)
	}

	// Release the slot so the parked request completes and drains.
	<-s.slots
	<-parked
	s.slots <- struct{}{}
}

// TestDeadlineWhileQueued504 parks a request behind a held slot with a tiny
// deadline and asserts it times out as 504 without ever compiling.
func TestDeadlineWhileQueued504(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 4})
	s.slots <- struct{}{}
	defer func() { <-s.slots }()

	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/compile?timeout_ms=50", "text/plain", strings.NewReader(kernelMIR))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("504 took %v, want prompt expiry", elapsed)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeDeadline {
		t.Errorf("code = %q, want %q", e.Code, CodeDeadline)
	}
	if got := s.metrics.deadlines.Load(); got < 1 {
		t.Errorf("deadline counter = %d, want >= 1", got)
	}
}

// TestDeadlineNoGoroutineLeak hammers the queued-timeout path and checks
// the goroutine count returns to baseline.
func TestDeadlineNoGoroutineLeak(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 64})
	s.slots <- struct{}{}

	before := runtime.NumGoroutine()
	for i := 0; i < 16; i++ {
		resp, err := http.Post(ts.URL+"/v1/compile?timeout_ms=20", "text/plain", strings.NewReader(kernelMIR))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	<-s.slots
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+4 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: before %d, after %d", before, runtime.NumGoroutine())
}

func TestHealthzDrainFlip(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	s.SetDraining(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
	var st struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "draining" {
		t.Errorf("status = %q, want draining", st.Status)
	}
}

func TestStatzShape(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheMaxBytes: 1 << 20})
	// Generate a hit and a miss so the rates are meaningful.
	postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR})
	postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR})

	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests.Total != 2 || st.Requests.OK != 2 {
		t.Errorf("requests = %+v, want total=2 ok=2", st.Requests)
	}
	if st.Cache.FullHits < 1 {
		t.Errorf("second identical compile should hit the cache: %+v", st.Cache)
	}
	if st.Cache.MaxBytes != 1<<20 {
		t.Errorf("cache.max_bytes = %d, want %d", st.Cache.MaxBytes, 1<<20)
	}
	for _, name := range phaseNames {
		if _, ok := st.Phases[name]; !ok {
			t.Errorf("phase histogram %q missing", name)
		}
	}
	if st.Phases["total"].Count != 2 || st.Phases["total"].P50MS <= 0 {
		t.Errorf("total histogram = %+v, want count=2 and positive p50", st.Phases["total"])
	}
	if st.UptimeS <= 0 {
		t.Errorf("uptime_s = %v, want > 0", st.UptimeS)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// ---- loadgen acceptance demos ----

// TestLoadgenSustained is the acceptance-criterion demo: 64 concurrent
// clients replaying a small kernel corpus must see zero 5xx and a >50%
// cache hit rate.
func TestLoadgenSustained(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheMaxBytes: 256 << 20})
	res, err := RunLoadgen(LoadgenConfig{
		URL:         ts.URL,
		Concurrency: 64,
		Requests:    512,
		Kernels:     8,
		RetryOn429:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors5xx != 0 {
		t.Errorf("5xx = %d, want 0", res.Errors5xx)
	}
	if res.OK != 512 {
		t.Errorf("ok = %d, want 512 (rejections should have been retried)", res.OK)
	}
	if res.Statz == nil {
		t.Fatal("no final statz scrape")
	}
	if hr := res.Statz.Cache.FullHitRate; hr <= 0.5 {
		t.Errorf("full cache hit rate = %.3f, want > 0.5", hr)
	}
	if res.ThroughputRPS <= 0 || res.Latency.P50MS <= 0 {
		t.Errorf("degenerate perf summary: %+v", res)
	}
}

// TestLoadgenSaturation points an unthrottled client fleet at a deliberately
// tiny daemon and asserts overload surfaces as 429s (never 5xx) while the
// cache stays under its byte cap.
func TestLoadgenSaturation(t *testing.T) {
	// One compile slot, one queue slot. With the pooled zero-allocation
	// compile path a cold compile is only milliseconds, so whether real
	// traffic ever piles three requests onto a tiny daemon is
	// scheduler-timing dependent (on a single-CPU runner a short compile
	// never yields the processor to the client goroutines). Make overload
	// deterministic instead: occupy the sole compile slot while the
	// fleet's opening wave arrives, so the first request queues and every
	// further concurrent one must be rejected, then release the slot and
	// let the remainder of the run drain normally.
	s, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 1, CacheMaxBytes: 16 << 10})
	s.slots <- struct{}{}
	release := time.AfterFunc(500*time.Millisecond, func() { <-s.slots })
	defer release.Stop()
	res, err := RunLoadgen(LoadgenConfig{
		URL:         ts.URL,
		Concurrency: 32,
		Requests:    256,
		Kernels:     32,
		RetryOn429:  false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors5xx != 0 {
		t.Errorf("5xx = %d, want 0", res.Errors5xx)
	}
	if got, cap := s.Cache().Stats().BytesRetained, s.Cache().MaxBytes(); got > cap {
		t.Errorf("cache bytes retained %d exceeds cap %d", got, cap)
	}
	if res.Rejected429 == 0 {
		t.Error("no 429s despite a held compile slot; admission control never engaged")
	}
	if res.OK == 0 {
		t.Error("no requests succeeded after the slot was released")
	}
}

func TestCorpusDistinct(t *testing.T) {
	c := Corpus(24)
	if len(c) != 24 {
		t.Fatalf("corpus size %d, want 24", len(c))
	}
	seen := map[string]bool{}
	for _, src := range c {
		if seen[src] {
			t.Fatal("duplicate kernel in corpus")
		}
		seen[src] = true
	}
}

func TestConfigNormalize(t *testing.T) {
	cfg := Config{}.Normalize()
	if cfg.MaxInFlight <= 0 || cfg.MaxQueue != 4*cfg.MaxInFlight {
		t.Errorf("bad defaults: %+v", cfg)
	}
	if cfg.DefaultTimeout != 10*time.Second || cfg.MaxTimeout != 60*time.Second {
		t.Errorf("bad timeout defaults: %+v", cfg)
	}
}

// TestContextPlumbing sanity-checks that a cancelled client context reaches
// the compile pipeline (the server must not compile on a dead request).
func TestContextPlumbing(t *testing.T) {
	s, err := New(Config{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/compile", strings.NewReader(kernelMIR)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 for pre-cancelled request; body %s", w.Code, w.Body)
	}
}

// TestCompileWithVerify runs a request under the phase-boundary verifier:
// the output must match an unverified compile byte for byte, and the
// verified compile must bypass the shared cache (the verification has to
// actually run, so a cached result would be a lie).
func TestCompileWithVerify(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, plain := postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, EmitMIR: true})
	resp, verified := postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, EmitMIR: true, Verify: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, verified)
	}
	var a, b CompileResponse
	if err := json.Unmarshal(plain, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(verified, &b); err != nil {
		t.Fatal(err)
	}
	if a.MIR != b.MIR || a.Report != b.Report {
		t.Fatalf("verified compile differs from plain compile:\n%s\nvs\n%s", verified, plain)
	}
	// The first (unverified) request populated the cache; the verified one
	// must not have hit it.
	if hits := s.Cache().Stats().FullHits; hits != 0 {
		t.Errorf("verified compile hit the cache %d times; want bypass", hits)
	}
}

// TestCompileVerifyQueryParam covers the raw-MIR envelope's verify flag.
func TestCompileVerifyQueryParam(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/compile?verify=true", "text/plain", strings.NewReader(kernelMIR))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

// TestCompileWithValidate runs a request under the translation
// validator: the output must match a plain compile byte for byte, and
// the validated compile must bypass the shared cache, mirroring the
// verify contract.
func TestCompileWithValidate(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, plain := postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, EmitMIR: true})
	resp, validated := postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, EmitMIR: true, Validate: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, validated)
	}
	var a, b CompileResponse
	if err := json.Unmarshal(plain, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(validated, &b); err != nil {
		t.Fatal(err)
	}
	if a.MIR != b.MIR || a.Report != b.Report {
		t.Fatalf("validated compile differs from plain compile:\n%s\nvs\n%s", validated, plain)
	}
	if hits := s.Cache().Stats().FullHits; hits != 0 {
		t.Errorf("validated compile hit the cache %d times; want bypass", hits)
	}
}

// TestCompileValidateQueryParam covers the raw-MIR envelope's validate
// flag.
func TestCompileValidateQueryParam(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/compile?validate=true", "text/plain", strings.NewReader(kernelMIR))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
