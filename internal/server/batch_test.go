package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"prescount/internal/ir"
	"prescount/internal/workload"
)

func postBatch(t *testing.T, url string, req BatchRequest) (*http.Response, *BatchResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/compile/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	br := &BatchResponse{}
	if err := json.NewDecoder(resp.Body).Decode(br); err != nil {
		t.Fatal(err)
	}
	return resp, br
}

// TestBatchMatchesSingleCompiles pins the batch contract: results arrive in
// request order and each is identical to the same kernel compiled alone.
func TestBatchMatchesSingleCompiles(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 2, SpecWorkers: 0})
	kernels := []string{
		ir.Print(workload.RandomSized(31, 120)),
		ir.Print(workload.RandomSized(32, 80)),
		kernelMIR,
	}
	entries := make([]CompileRequest, len(kernels))
	for i, k := range kernels {
		entries[i] = CompileRequest{MIR: k, Method: "bpc", Banks: 4, EmitMIR: true}
	}
	resp, br := postBatch(t, ts.URL, BatchRequest{Entries: entries})
	if br == nil {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if len(br.Results) != len(kernels) {
		t.Fatalf("%d results for %d entries", len(br.Results), len(kernels))
	}
	if br.Deduped != 0 {
		t.Fatalf("deduped = %d on distinct kernels", br.Deduped)
	}

	// A second server compiles each kernel individually; the per-entry
	// payloads must match byte for byte (reports, allocs, emitted MIR).
	_, single := newTestServer(t, Config{MaxInFlight: 2, SpecWorkers: 0})
	for i, k := range kernels {
		got := br.Results[i]
		if got.OK == nil {
			t.Fatalf("entry %d failed: %+v", i, got.Error)
		}
		resp, body := postJSON(t, single.URL+"/v1/compile", CompileRequest{
			MIR: k, Method: "bpc", Banks: 4, EmitMIR: true,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single compile %d: status %d: %s", i, resp.StatusCode, body)
		}
		var want CompileResponse
		if err := json.Unmarshal(body, &want); err != nil {
			t.Fatal(err)
		}
		gotJSON, _ := json.Marshal(got.OK)
		wantJSON, _ := json.Marshal(want.FuncResponse)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("entry %d diverged from single compile:\nbatch:  %s\nsingle: %s", i, gotJSON, wantJSON)
		}
	}
}

// TestBatchDedup pins dedup attribution: identical entries share a compile
// and the response reports how many were collapsed.
func TestBatchDedup(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 2, SpecWorkers: 0})
	entries := []CompileRequest{
		{MIR: kernelMIR, Method: "bpc"},
		{MIR: kernelMIR, Method: "bpc"},
		{MIR: kernelMIR, Method: "bpc"},
		{MIR: kernelMIR, Method: "non"}, // different options: no dedup
	}
	_, br := postBatch(t, ts.URL, BatchRequest{Entries: entries})
	if br == nil {
		t.Fatal("batch failed")
	}
	if br.Deduped != 2 {
		t.Fatalf("deduped = %d, want 2", br.Deduped)
	}
	for i, r := range br.Results {
		if r.OK == nil {
			t.Fatalf("entry %d failed: %+v", i, r.Error)
		}
	}
	// The cache saw exactly two unique compiles from this batch.
	if st := s.Cache().Stats(); st.FullMisses != 2 {
		t.Fatalf("FullMisses = %d, want 2 (unique compiles)", st.FullMisses)
	}
	if st := s.Statz(); st.Batch.Requests != 1 || st.Batch.Entries != 4 || st.Batch.Deduped != 2 {
		t.Fatalf("batch statz %+v", st.Batch)
	}
}

// TestBatchDedupAcrossNames pins that structurally identical kernels under
// different symbol names dedup but answer under their own names.
func TestBatchDedupAcrossNames(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 1, SpecWorkers: 0})
	renamed := strings.Replace(kernelMIR, "@axpy", "@axpy_clone", 1)
	entries := []CompileRequest{
		{MIR: kernelMIR, Method: "bpc", EmitMIR: true},
		{MIR: renamed, Method: "bpc", EmitMIR: true},
	}
	_, br := postBatch(t, ts.URL, BatchRequest{Entries: entries})
	if br == nil {
		t.Fatal("batch failed")
	}
	if br.Deduped != 1 {
		t.Fatalf("deduped = %d, want 1 (name-blind fingerprint)", br.Deduped)
	}
	if br.Results[0].OK.Func != "axpy" || br.Results[1].OK.Func != "axpy_clone" {
		t.Fatalf("names %q, %q", br.Results[0].OK.Func, br.Results[1].OK.Func)
	}
	if !strings.Contains(br.Results[1].OK.MIR, "@axpy_clone") {
		t.Fatalf("deduped entry's MIR kept the sibling's name:\n%s", br.Results[1].OK.MIR)
	}
	if br.Results[0].OK.Report != br.Results[1].OK.Report {
		t.Fatal("shared unit produced different reports")
	}
}

// TestBatchPerEntryErrors pins error isolation: a bad entry fails alone
// with the single-endpoint error vocabulary; its neighbors still compile.
func TestBatchPerEntryErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 1, SpecWorkers: 0})
	entries := []CompileRequest{
		{MIR: kernelMIR, Method: "bpc"},
		{MIR: "not mir at all", Method: "bpc"},
		{MIR: kernelMIR, Method: "warp-drive"},
		{MIR: moduleMIR, Method: "bpc"}, // two functions: not a batch entry
		{MIR: kernelMIR, Method: "non"},
	}
	_, br := postBatch(t, ts.URL, BatchRequest{Entries: entries})
	if br == nil {
		t.Fatal("batch failed")
	}
	wantCodes := []string{"", CodeParse, CodeBadRequest, CodeBadRequest, ""}
	for i, want := range wantCodes {
		r := br.Results[i]
		if want == "" {
			if r.OK == nil {
				t.Fatalf("entry %d failed: %+v", i, r.Error)
			}
			continue
		}
		if r.Error == nil || r.Error.Code != want {
			t.Fatalf("entry %d: error %+v, want code %q", i, r.Error, want)
		}
	}
}

// TestBatchRejectsEmptyAndOversized covers the envelope-level failures.
func TestBatchRejectsEmptyAndOversized(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 1, SpecWorkers: 0})
	resp, _ := postBatch(t, ts.URL, BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
	over := make([]CompileRequest, maxBatchEntries+1)
	for i := range over {
		over[i] = CompileRequest{MIR: kernelMIR}
	}
	resp, _ = postBatch(t, ts.URL, BatchRequest{Entries: over})
	// The oversized batch hits either the entry bound or the body cap,
	// both client errors.
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d, want 400/413", resp.StatusCode)
	}
}

// TestBatchDeadline pins that an expired batch deadline yields per-entry
// 504-coded errors, not an HTTP 5xx.
func TestBatchDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 1, SpecWorkers: 0})
	big := ir.Print(workload.RandomSized(41, 4000))
	entries := []CompileRequest{
		{MIR: big, Method: "bpc"},
		{MIR: ir.Print(workload.RandomSized(42, 4000)), Method: "bpc"},
		{MIR: ir.Print(workload.RandomSized(43, 4000)), Method: "bpc"},
	}
	resp, br := postBatch(t, ts.URL, BatchRequest{Entries: entries, TimeoutMS: 1})
	if br == nil {
		t.Fatalf("batch status %d, want 200 with per-entry errors", resp.StatusCode)
	}
	deadline := 0
	for _, r := range br.Results {
		if r.Error != nil && r.Error.Code == CodeDeadline {
			deadline++
		}
	}
	if deadline == 0 {
		t.Fatalf("no entry reported a deadline: %+v", br.Results)
	}
}
