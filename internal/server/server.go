// Package server implements prescountd's compile-as-a-service layer: an
// HTTP daemon that runs the Figure-4 register-allocation pipeline on
// demand. It is the serving-path counterpart of the batch CLIs — the same
// internal/core pipeline behind
//
//	POST /v1/compile          one function (bare or single-function module)
//	POST /v1/compile/module   a whole module, fanned out over internal/pool
//	GET  /healthz             liveness (503 while draining)
//	GET  /statz               cache hit rates, gauges, latency histograms
//
// with the three properties a long-running service needs that the CLIs do
// not:
//
//   - Admission control: at most MaxInFlight compiles run concurrently and
//     at most MaxQueue requests wait behind them; beyond that the server
//     answers 429 with Retry-After instead of queueing without bound.
//   - Per-request deadlines: every request carries a context that expires
//     after its deadline (client-shortenable via timeout_ms), threaded into
//     core.CompileContext so a dead client stops burning CPU at the next
//     phase boundary. Expired compiles answer 504.
//   - A shared, byte-capped compile cache: repeated kernel submissions hit
//     the content-addressed cache from PR 3, with LRU eviction keeping the
//     daemon's footprint bounded (compilecache.NewLimited).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prescount/internal/bankfile"
	"prescount/internal/compilecache"
	"prescount/internal/conflict"
	"prescount/internal/core"
	"prescount/internal/diskcache"
	"prescount/internal/ir"
	"prescount/internal/portfolio"
	"prescount/internal/regalloc"
	"prescount/internal/sim"
)

// Config tunes the daemon. The zero value is usable: Normalize fills every
// field with a production-shaped default.
type Config struct {
	// MaxInFlight bounds concurrently executing compile requests
	// (default: GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; beyond it
	// the server answers 429 (default: 4 * MaxInFlight).
	MaxQueue int
	// MaxBody caps the request body in bytes (default 8 MiB).
	MaxBody int64
	// DefaultTimeout is the per-request deadline when the client does not
	// pass timeout_ms (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (default 60s).
	MaxTimeout time.Duration
	// CacheMaxBytes caps the shared compile cache; <= 0 means unlimited
	// (the CLI policy — a daemon should set a cap).
	CacheMaxBytes int64
	// Workers bounds the per-request module fan-out (core.Options.Workers;
	// default 0 = GOMAXPROCS).
	Workers int
	// ModuleTokens caps the count of module priors retained for incremental
	// recompiles (default 64; < 0 disables token minting).
	ModuleTokens int
	// SpecWorkers is the number of background workers precompiling likely
	// sweep neighbors in idle admission slots (0 disables speculation).
	SpecWorkers int
	// DiskCacheDir, when non-empty, layers a persistent on-disk result
	// store under the in-memory compile cache: full-layer misses consult
	// the directory before compiling, and fresh results are written behind.
	// The directory survives restarts — a warm fleet node restarted with
	// the same dir serves its old working set from disk.
	DiskCacheDir string
	// DiskCacheBytes caps the on-disk store with mtime-LRU eviction
	// sweeps; <= 0 means unlimited.
	DiskCacheBytes int64
}

// Normalize returns cfg with defaults filled in.
func (cfg Config) Normalize() Config {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 8 << 20
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 60 * time.Second
	}
	if cfg.ModuleTokens == 0 {
		cfg.ModuleTokens = 64
	}
	return cfg
}

// Server is the compile service. Create with New, mount Handler on an
// http.Server (or use cmd/prescountd).
type Server struct {
	cfg     Config
	cache   *compilecache.Cache
	metrics *metrics
	// tokens retains module priors for incremental recompiles, keyed by the
	// deterministic module token handed back in ModuleResponse.
	tokens *tokenStore
	// spec precompiles sweep neighbors in idle slots; nil when disabled.
	spec     *speculator
	specStop sync.Once

	// disk is the persistent second cache level; nil when not configured.
	disk *diskcache.Store

	// slots is the in-flight semaphore: a request holds one token for the
	// duration of its compile.
	slots chan struct{}
	// queued counts requests waiting for a token; bounded by MaxQueue.
	queued atomic.Int64
	// draining flips healthz to 503 during graceful shutdown.
	draining atomic.Bool
}

// New returns a Server with the given configuration and a fresh shared
// compile cache (byte-capped when cfg.CacheMaxBytes > 0). When
// cfg.DiskCacheDir is set the directory is opened (or created) as the
// persistent second cache level; an unusable directory is the only error.
func New(cfg Config) (*Server, error) {
	cfg = cfg.Normalize()
	s := &Server{
		cfg:     cfg,
		cache:   compilecache.NewLimited(cfg.CacheMaxBytes),
		metrics: newMetrics(),
		slots:   make(chan struct{}, cfg.MaxInFlight),
	}
	if cfg.DiskCacheDir != "" {
		store, err := diskcache.Open(cfg.DiskCacheDir, cfg.DiskCacheBytes)
		if err != nil {
			return nil, fmt.Errorf("disk cache: %w", err)
		}
		s.disk = store
		s.cache.SetFullBacking(core.NewDiskBacking(store))
	}
	if cfg.ModuleTokens > 0 {
		s.tokens = newTokenStore(cfg.ModuleTokens)
	}
	if cfg.SpecWorkers > 0 {
		s.spec = newSpeculator(s, cfg.SpecWorkers)
	}
	return s, nil
}

// Config returns the normalized configuration.
func (s *Server) Config() Config { return s.cfg }

// Cache exposes the shared compile cache (for stats and tests).
func (s *Server) Cache() *compilecache.Cache { return s.cache }

// Disk exposes the persistent store (nil when not configured).
func (s *Server) Disk() *diskcache.Store { return s.disk }

// Close flushes and closes the persistent store (if any). Call it after the
// HTTP listener has drained: queued write-behind entries land on disk so
// the next start of this node serves them as hits.
func (s *Server) Close() {
	if s.disk != nil {
		s.disk.Close()
	}
}

// SetDraining marks the server as draining: healthz answers 503 so load
// balancers stop routing, while in-flight requests finish normally.
// Draining also cancels and permanently stops the speculator — background
// work must never delay shutdown.
func (s *Server) SetDraining(v bool) {
	s.draining.Store(v)
	if v && s.spec != nil {
		s.specStop.Do(s.spec.stop)
	}
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compile", func(w http.ResponseWriter, r *http.Request) {
		s.serveCompile(w, r, false)
	})
	mux.HandleFunc("/v1/compile/module", func(w http.ResponseWriter, r *http.Request) {
		s.serveCompile(w, r, true)
	})
	mux.HandleFunc("/v1/compile/batch", s.serveBatch)
	mux.HandleFunc("/healthz", s.serveHealthz)
	mux.HandleFunc("/statz", s.serveStatz)
	return mux
}

// Error codes of the JSON error envelope (docs/API.md).
const (
	CodeBadRequest = "bad_request" // 400: malformed envelope/options
	CodeParse      = "parse"       // 400: MIR did not parse
	CodeCompile    = "compile"     // 422: pipeline rejected the function
	CodeSimulate   = "simulate"    // 422: allocated code failed simulation
	CodeSaturated  = "saturated"   // 429: admission queue full
	CodeDeadline   = "deadline"    // 504: request deadline expired
	CodeTooLarge   = "too_large"   // 413: body over MaxBody
)

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// CompileRequest is the JSON request envelope of both compile endpoints.
// Raw-MIR requests (any content type but application/json) put the source
// in the body and these fields in query parameters.
type CompileRequest struct {
	// MIR is the textual MIR source: a bare function, or a module.
	MIR string `json:"mir"`
	// Regs/Banks/Subgroups describe the register file (defaults 32/2/1;
	// subgroups > 1 enables the DSA subgroup-splitting path).
	Regs      int `json:"regs,omitempty"`
	Banks     int `json:"banks,omitempty"`
	Subgroups int `json:"subgroups,omitempty"`
	// Method is non | bcr | brc | bpc | binpack | coloring (default bpc),
	// or a portfolio mode: "portfolio" races every method and keeps the
	// cheapest result, "auto" predicts the method from function features and
	// races only when the selector is unconfident. Portfolio modes are
	// accepted on the compile endpoints, not in batch entries.
	Method string `json:"method,omitempty"`
	// THRES overrides Algorithm 1's pressure threshold (0 = default).
	THRES float64 `json:"thres,omitempty"`
	// LinearScan swaps in the linear-scan allocator.
	LinearScan bool `json:"linear_scan,omitempty"`
	// ColoringTimeoutMS bounds the coloring allocator's work budget (method
	// coloring, or the coloring candidate of a portfolio race); 0 keeps the
	// allocator default. The budget is deterministic — the same source bails
	// at the same point regardless of machine load — while the request
	// deadline itself still cancels coloring at phase boundaries, so a
	// coloring request can 504 but never hang.
	ColoringTimeoutMS int64 `json:"coloring_timeout_ms,omitempty"`
	// Verify runs the phase-boundary verifier between pipeline stages; a
	// rule violation fails the compile with a diagnostic naming the rule.
	// Verified compiles bypass the shared compile cache.
	Verify bool `json:"verify,omitempty"`
	// Validate runs the translation validator on the allocated output: a
	// symbolic equivalence check of the result against the pre-allocation
	// MIR, failing the compile with a T-rule diagnostic on divergence.
	// Like Verify, validated compiles bypass the shared compile cache.
	Validate bool `json:"validate,omitempty"`
	// Simulate executes the allocated code and attaches dynamic metrics.
	Simulate bool `json:"simulate,omitempty"`
	// VLIW selects the dual-issue cycle model for simulation.
	VLIW bool `json:"vliw,omitempty"`
	// EmitMIR includes the allocated MIR text in the response.
	EmitMIR bool `json:"emit_mir,omitempty"`
	// TimeoutMS shortens the request deadline below the server default
	// (capped at the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// PriorToken references an earlier /v1/compile/module result (its
	// module_token): functions unchanged since that compile are reused
	// without recompiling. An unknown or expired token compiles from
	// scratch — never an error.
	PriorToken string `json:"prior_token,omitempty"`
}

// ReportJSON mirrors conflict.Report with stable JSON names.
type ReportJSON struct {
	Instrs             int     `json:"instrs"`
	ConflictRelevant   int     `json:"conflict_relevant"`
	StaticConflicts    int     `json:"static_conflicts"`
	ConflictInstrs     int     `json:"conflict_instrs"`
	WeightedConflicts  float64 `json:"weighted_conflicts"`
	SubgroupViolations int     `json:"subgroup_violations"`
	Copies             int     `json:"copies"`
	SpillStores        int     `json:"spill_stores"`
	SpillReloads       int     `json:"spill_reloads"`
}

func reportJSON(r *conflict.Report) ReportJSON {
	return ReportJSON{
		Instrs:             r.Instrs,
		ConflictRelevant:   r.ConflictRelevant,
		StaticConflicts:    r.StaticConflicts,
		ConflictInstrs:     r.ConflictInstrs,
		WeightedConflicts:  r.WeightedConflicts,
		SubgroupViolations: r.SubgroupViolations,
		Copies:             r.Copies,
		SpillStores:        r.SpillStores,
		SpillReloads:       r.SpillReloads,
	}
}

// AllocJSON carries the allocator statistics of one function.
type AllocJSON struct {
	SpilledVRegs int `json:"spilled_vregs"`
	SpillStores  int `json:"spill_stores"`
	SpillReloads int `json:"spill_reloads"`
	LoopSplits   int `json:"loop_splits"`
	Evictions    int `json:"evictions"`
	Remats       int `json:"remats"`
	BankBreaks   int `json:"bank_breaks"`
	// Rescues counts binpacking second-chance re-queues (method binpack).
	Rescues int `json:"rescues,omitempty"`
	// ColoringBailed reports that coloring exhausted its work budget and the
	// function fell back to linear scan (method coloring).
	ColoringBailed bool `json:"coloring_bailed,omitempty"`
}

func allocJSON(a *regalloc.Result) AllocJSON {
	return AllocJSON{
		SpilledVRegs:   a.SpilledVRegs,
		SpillStores:    a.SpillStores,
		SpillReloads:   a.SpillReloads,
		LoopSplits:     a.LoopSplits,
		Evictions:      a.Evictions,
		Remats:         a.Remats,
		BankBreaks:     a.BankBreaks,
		Rescues:        a.Rescues,
		ColoringBailed: a.ColoringBailed,
	}
}

// SimJSON carries the dynamic metrics of a simulated run.
type SimJSON struct {
	Steps             int64  `json:"steps"`
	Cycles            int64  `json:"cycles"`
	DynamicConflicts  int64  `json:"dynamic_conflicts"`
	ConflictInstances int64  `json:"conflict_instances"`
	MemChecksum       string `json:"mem_checksum"`
}

// FuncResponse is the per-function result.
type FuncResponse struct {
	Func   string     `json:"func"`
	MIR    string     `json:"mir,omitempty"`
	Report ReportJSON `json:"report"`
	Alloc  AllocJSON  `json:"alloc"`
	Sim    *SimJSON   `json:"sim,omitempty"`
	// Method attributes the winning allocator of a portfolio/auto request.
	Method string `json:"method,omitempty"`
	// Selected reports the winner was predicted by the feature selector
	// without racing (method=auto only).
	Selected bool `json:"selected,omitempty"`
}

// CompileResponse is the /v1/compile success body.
type CompileResponse struct {
	FuncResponse
	WallNS int64 `json:"wall_ns"`
}

// ModuleResponse is the /v1/compile/module success body; Funcs are in
// sorted name order.
type ModuleResponse struct {
	Module string         `json:"module"`
	Funcs  []FuncResponse `json:"funcs"`
	Totals ReportJSON     `json:"totals"`
	WallNS int64          `json:"wall_ns"`
	// ModuleToken names this result for incremental recompiles: pass it as
	// prior_token on the next compile of an edited version of this module
	// and unchanged functions are reused. Absent on verified compiles.
	ModuleToken string `json:"module_token,omitempty"`
	// ReusedFuncs/CompiledFuncs attribute the work: functions satisfied by
	// the prior without compiling versus compiled (cache hits included).
	ReusedFuncs   int `json:"reused_funcs"`
	CompiledFuncs int `json:"compiled_funcs"`
}

func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"status":"draining"}`+"\n")
		return
	}
	io.WriteString(w, `{"status":"ok"}`+"\n")
}

func (s *Server) serveStatz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Statz())
}

// serveCompile is the shared handler of both compile endpoints; module
// selects the whole-module variant.
func (s *Server) serveCompile(w http.ResponseWriter, r *http.Request, module bool) {
	total := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, CodeBadRequest, "POST only")
		return
	}
	s.metrics.total.Add(1)

	req, status, err := s.decodeRequest(w, r)
	if err != nil {
		code := CodeBadRequest
		if status == http.StatusRequestEntityTooLarge {
			code = CodeTooLarge
		}
		s.fail(w, status, code, err.Error())
		return
	}
	opts, pmode, err := s.compileOptions(req)
	if err != nil {
		s.fail(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	s.metrics.countMethod(methodLabel(req.Method))

	// The request deadline covers queueing AND compiling: a request that
	// spent its whole budget waiting for a slot answers 504 immediately
	// rather than starting a compile nobody is waiting for.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	if ok := s.admit(w, ctx); !ok {
		return
	}
	defer func() { <-s.slots }()

	// Parse phase.
	parseStart := time.Now()
	mod, err := parseSource(req.MIR)
	s.metrics.phase("parse").observe(time.Since(parseStart))
	if err != nil {
		s.metrics.parseErrors.Add(1)
		s.fail(w, http.StatusBadRequest, CodeParse, err.Error())
		return
	}
	if !module && len(mod.Funcs) > 1 {
		s.fail(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("%d functions in request; use /v1/compile/module", len(mod.Funcs)))
		return
	}

	// Incremental recompile: resolve the client's prior token. Unknown or
	// expired tokens simply compile from scratch. Portfolio requests skip
	// priors — a prior is bound to one method's digest, not a race.
	if module && s.tokens != nil && req.PriorToken != "" && pmode == "" {
		if prior := s.tokens.Get(req.PriorToken); prior != nil {
			s.metrics.tokenHits.Add(1)
			opts.Prior = prior
		} else {
			s.metrics.tokenMisses.Add(1)
		}
	}

	// Attribute speculative precompiles: any function of this request whose
	// full-layer entry was filled by the speculator is a warm hit. (A
	// portfolio request has no single digest; attribution is skipped.)
	if s.spec != nil && pmode == "" {
		digest := opts.FullDigest()
		for _, f := range mod.SortedFuncs() {
			s.spec.claimWarm(compilecache.Key{Fingerprint: f.Fingerprint(), Digest: digest})
		}
	}

	// Compile phase. Portfolio modes route through internal/portfolio (every
	// candidate shares this server's cache, so the method-independent prefix
	// compiles once per function); single methods take the core path with its
	// full-result cache and incremental priors.
	compileStart := time.Now()
	var mres *core.ModuleResult
	var pres *portfolio.ModuleResult
	if pmode != "" {
		pres, err = portfolio.CompileModule(ctx, mod, opts, portfolio.Config{
			Auto: pmode == portfolio.ModeAuto,
		})
	} else {
		mres, err = core.CompileModuleContext(ctx, mod, opts)
	}
	s.metrics.phase("compile").observe(time.Since(compileStart))
	if err != nil {
		if isDeadline(err) {
			s.metrics.deadlines.Add(1)
			s.fail(w, http.StatusGatewayTimeout, CodeDeadline, err.Error())
			return
		}
		s.metrics.compileErrors.Add(1)
		s.fail(w, http.StatusUnprocessableEntity, CodeCompile, err.Error())
		return
	}
	if pres != nil {
		s.metrics.countRaceOutcome(pres.Wins, pres.Selected)
	}

	// Optional simulate phase.
	funcs := make([]FuncResponse, 0, len(mod.Funcs))
	for _, f := range mod.SortedFuncs() {
		var res *core.Result
		fr := FuncResponse{Func: f.Name}
		if pres != nil {
			rr := pres.PerFunc[f.Name]
			res = rr.Result
			fr.Method = rr.Winner.String()
			fr.Selected = rr.Selected
		} else {
			res = mres.PerFunc[f.Name]
		}
		fr.Report = reportJSON(res.Report)
		fr.Alloc = allocJSON(res.Alloc)
		if req.EmitMIR {
			fr.MIR = ir.Print(res.Func)
		}
		if req.Simulate {
			simStart := time.Now()
			sr, serr := sim.Run(res.Func, sim.Options{File: opts.File, VLIW: req.VLIW})
			s.metrics.phase("simulate").observe(time.Since(simStart))
			if serr != nil {
				s.metrics.compileErrors.Add(1)
				s.fail(w, http.StatusUnprocessableEntity, CodeSimulate, serr.Error())
				return
			}
			fr.Sim = &SimJSON{
				Steps:             sr.Steps,
				Cycles:            sr.Cycles,
				DynamicConflicts:  sr.DynamicConflicts,
				ConflictInstances: sr.ConflictInstances,
				MemChecksum:       fmt.Sprintf("%016x", sr.MemChecksum),
			}
		}
		funcs = append(funcs, fr)
	}

	// Speculatively precompile the sweep neighbors (adjacent bank counts)
	// of this now-warm request in idle slots. Verified and validated
	// compiles bypass the cache, so speculating on them would be wasted
	// work; portfolio requests have no single-method neighborhood to
	// speculate on.
	if s.spec != nil && !req.Verify && !req.Validate && pmode == "" && !s.draining.Load() {
		s.spec.enqueue(mod, opts)
	}

	s.metrics.ok.Add(1)
	wall := time.Since(total)
	s.metrics.phase("total").observe(wall)
	if module {
		resp := ModuleResponse{
			Module: mod.Name,
			Funcs:  funcs,
			WallNS: wall.Nanoseconds(),
		}
		if pres != nil {
			resp.Totals = reportJSON(&pres.Totals)
			resp.CompiledFuncs = len(funcs)
		} else {
			resp.Totals = reportJSON(&mres.Totals)
			resp.ReusedFuncs = mres.ReusedFuncs
			resp.CompiledFuncs = mres.CompiledFuncs
			s.metrics.reusedFuncs.Add(int64(mres.ReusedFuncs))
			s.metrics.compiledFuncs.Add(int64(mres.CompiledFuncs))
			if s.tokens != nil && mres.Prior != nil {
				resp.ModuleToken = s.tokens.Put(mres.Prior)
			}
		}
		s.respond(w, http.StatusOK, resp)
		return
	}
	s.respond(w, http.StatusOK, CompileResponse{FuncResponse: funcs[0], WallNS: wall.Nanoseconds()})
}

// admit acquires an in-flight slot, waiting in the bounded queue. It
// answers 429 (queue full) or 504 (deadline expired while queued) itself
// and returns false; on true the caller must release the slot.
func (s *Server) admit(w http.ResponseWriter, ctx context.Context) bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
	}
	// Every slot is busy. If any of them is a speculative compile, cancel
	// it — admitted work always preempts speculation, and the cancelled
	// compile releases its slot at the next phase boundary.
	if s.spec != nil {
		s.spec.preempt()
	}
	if q := s.queued.Add(1); q > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.metrics.rejected.Add(1)
		// Retry-After names the default deadline as a conservative "the
		// queue ahead of you is full" hint.
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.DefaultTimeout/time.Second)+1))
		s.fail(w, http.StatusTooManyRequests, CodeSaturated,
			fmt.Sprintf("%d in flight and %d queued; retry later", s.cfg.MaxInFlight, s.cfg.MaxQueue))
		return false
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return true
	case <-ctx.Done():
		s.metrics.deadlines.Add(1)
		s.fail(w, http.StatusGatewayTimeout, CodeDeadline, "deadline expired while queued")
		return false
	}
}

// decodeRequest reads either envelope: JSON (application/json) or raw MIR
// with query-parameter options.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*CompileRequest, int, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds %d bytes", s.cfg.MaxBody)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("reading body: %w", err)
	}
	req := &CompileRequest{}
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(body, req); err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("request JSON: %w", err)
		}
	} else {
		req.MIR = string(body)
		if err := optionsFromQuery(req, r); err != nil {
			return nil, http.StatusBadRequest, err
		}
	}
	if strings.TrimSpace(req.MIR) == "" {
		return nil, http.StatusBadRequest, errors.New("empty MIR source")
	}
	return req, 0, nil
}

// optionsFromQuery fills req from URL query parameters (the raw-MIR
// convenience envelope: `curl --data-binary @kernel.mir '…/v1/compile?method=bpc'`).
func optionsFromQuery(req *CompileRequest, r *http.Request) error {
	q := r.URL.Query()
	intq := func(name string, dst *int) error {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("query %s=%q: %w", name, v, err)
			}
			*dst = n
		}
		return nil
	}
	boolq := func(name string, dst *bool) error {
		if v := q.Get(name); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return fmt.Errorf("query %s=%q: %w", name, v, err)
			}
			*dst = b
		}
		return nil
	}
	for _, e := range []error{
		intq("regs", &req.Regs), intq("banks", &req.Banks), intq("subgroups", &req.Subgroups),
		boolq("simulate", &req.Simulate), boolq("vliw", &req.VLIW),
		boolq("emit_mir", &req.EmitMIR), boolq("linear_scan", &req.LinearScan),
		boolq("verify", &req.Verify), boolq("validate", &req.Validate),
	} {
		if e != nil {
			return e
		}
	}
	if v := q.Get("method"); v != "" {
		req.Method = v
	}
	if v := q.Get("prior_token"); v != "" {
		req.PriorToken = v
	}
	if v := q.Get("thres"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("query thres=%q: %w", v, err)
		}
		req.THRES = t
	}
	if v := q.Get("timeout_ms"); v != "" {
		t, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("query timeout_ms=%q: %w", v, err)
		}
		req.TimeoutMS = t
	}
	if v := q.Get("coloring_timeout_ms"); v != "" {
		t, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("query coloring_timeout_ms=%q: %w", v, err)
		}
		req.ColoringTimeoutMS = t
	}
	return nil
}

// methodLabel normalizes a request's method string for the per-method
// request counters ("" is the default method).
func methodLabel(m string) string {
	if m == "" {
		return core.MethodBPC.String()
	}
	return m
}

// compileOptions maps the request envelope onto core.Options, wiring in
// the shared cache and the worker bound. The second return is the portfolio
// mode ("portfolio"/"auto", empty for single-method requests): portfolio
// modes are not core methods — serveCompile routes them through
// internal/portfolio, with the returned options as the per-candidate base.
func (s *Server) compileOptions(req *CompileRequest) (core.Options, string, error) {
	method := core.MethodBPC
	pmode := ""
	switch {
	case req.Method == "":
	case portfolio.IsMode(req.Method):
		pmode = req.Method
	default:
		m, ok := core.ParseMethod(req.Method)
		if !ok {
			return core.Options{}, "", fmt.Errorf("unknown method %q (want non, bcr, brc, bpc, binpack, coloring, portfolio or auto)", req.Method)
		}
		method = m
	}
	if req.ColoringTimeoutMS < 0 {
		return core.Options{}, "", fmt.Errorf("negative coloring_timeout_ms %d", req.ColoringTimeoutMS)
	}
	regs, banks, subgroups := req.Regs, req.Banks, req.Subgroups
	if regs == 0 {
		regs = 32
	}
	if banks == 0 {
		banks = 2
	}
	if subgroups == 0 {
		subgroups = 1
	}
	if regs < 0 || banks < 0 || subgroups < 0 {
		return core.Options{}, "", fmt.Errorf("negative register file parameter (regs=%d banks=%d subgroups=%d)", regs, banks, subgroups)
	}
	file := bankfile.Config{NumRegs: regs, NumBanks: banks, NumSubgroups: subgroups, ReadPorts: 1}
	if err := file.Normalize().Validate(); err != nil {
		return core.Options{}, "", fmt.Errorf("register file: %w", err)
	}
	return core.Options{
		File:            file,
		Method:          method,
		Subgroups:       subgroups > 1,
		THRES:           req.THRES,
		LinearScan:      req.LinearScan,
		ColoringTimeout: time.Duration(req.ColoringTimeoutMS) * time.Millisecond,
		VerifyEach:      req.Verify,
		Validate:        req.Validate,
		Workers:         s.cfg.Workers,
		Cache:           s.cache,
	}, pmode, nil
}

// parseSource reads a module, falling back to a bare function, mirroring
// prescountc's input handling.
func parseSource(src string) (*ir.Module, error) {
	mod, err := ir.ParseModule(src)
	if err != nil {
		return nil, err
	}
	if len(mod.Funcs) == 0 {
		f, ferr := ir.Parse(src)
		if ferr != nil {
			return nil, ferr
		}
		mod.Add(f)
	}
	return mod, nil
}

func isDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

func (s *Server) fail(w http.ResponseWriter, status int, code, msg string) {
	s.respond(w, status, errorResponse{Error: msg, Code: code})
}

func (s *Server) respond(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(body)
}
