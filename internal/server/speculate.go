// Speculative sweep precompilation. Clients exploring a bank-count sweep
// walk adjacent powers of two (compile at 4 banks, then 2 and 8); the
// speculator uses admission slots that would otherwise sit idle to
// precompile those neighbors into the shared compile cache, so the
// follow-up request is a full-layer hit. Three rules keep speculation
// strictly subordinate to admitted work:
//
//   - A speculative compile only starts when an in-flight slot is free RIGHT
//     NOW and no request is queued; it never waits for a slot.
//   - The moment a real request has to queue, every running speculative
//     compile is cancelled (the slot frees at the next phase boundary) and
//     the cache forgets the partial entry — context-error entries are
//     never retained.
//   - Speculative results enter the same byte-capped LRU as demand
//     compiles; a speculation storm can only evict cold entries, and
//     admitted requests holding entry pointers are unaffected by eviction.
package server

import (
	"context"
	"sync"
	"sync/atomic"

	"prescount/internal/compilecache"
	"prescount/internal/core"
	"prescount/internal/ir"
)

// specQueueCap bounds pending speculation jobs; beyond it new neighbors are
// dropped (counted), never queued unboundedly.
const specQueueCap = 64

// specWarmCap bounds the speculated-key set used for warm-hit attribution.
const specWarmCap = 8192

// specJob is one neighbor to precompile: the parsed module of the request
// that seeded it (immutable after the response is written) and the options
// with the neighboring bank count swapped in.
type specJob struct {
	mod  *ir.Module
	opts core.Options
}

// speculator owns the background precompile workers.
type speculator struct {
	srv    *Server
	jobs   chan specJob
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// mu protects the cancel funcs of currently running speculative
	// compiles (preempt aborts them all) and the speculated-key set.
	// guards: running, nextRun, speculated
	mu         sync.Mutex
	running    map[int]context.CancelFunc
	nextRun    int
	speculated map[compilecache.Key]struct{}

	scheduled, compiled, cancelled atomic.Int64
	dropped, deduped, warmHits     atomic.Int64
}

func newSpeculator(s *Server, workers int) *speculator {
	ctx, cancel := context.WithCancel(context.Background())
	sp := &speculator{
		srv:        s,
		jobs:       make(chan specJob, specQueueCap),
		ctx:        ctx,
		cancel:     cancel,
		running:    map[int]context.CancelFunc{},
		speculated: map[compilecache.Key]struct{}{},
	}
	sp.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go sp.run()
	}
	return sp
}

// stop cancels every running speculative compile, stops the workers and
// waits for them to exit. Called on drain — speculation must never delay
// shutdown.
func (sp *speculator) stop() {
	sp.cancel()
	sp.preempt()
	sp.wg.Wait()
}

// enqueue schedules the sweep neighbors of a successfully compiled request:
// the same module at half and double the bank count. Jobs beyond the queue
// cap are dropped, never waited on.
func (sp *speculator) enqueue(mod *ir.Module, opts core.Options) {
	for _, nb := range []int{opts.File.NumBanks * 2, opts.File.NumBanks / 2} {
		if nb < 1 || nb == opts.File.NumBanks {
			continue
		}
		nopts := opts
		nopts.File.NumBanks = nb
		nopts.Prior = nil
		if err := nopts.File.Normalize().Validate(); err != nil {
			continue
		}
		select {
		case sp.jobs <- specJob{mod: mod, opts: nopts}:
			sp.scheduled.Add(1)
		default:
			sp.dropped.Add(1)
		}
	}
}

// preempt cancels every running speculative compile. admit calls it the
// moment a real request has to queue for a slot.
func (sp *speculator) preempt() {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for _, cancel := range sp.running {
		cancel()
	}
}

// claimWarm reports whether k was filled by speculation and not yet claimed
// by a real request; each speculative fill is claimed at most once.
func (sp *speculator) claimWarm(k compilecache.Key) bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if _, ok := sp.speculated[k]; !ok {
		return false
	}
	delete(sp.speculated, k)
	sp.warmHits.Add(1)
	return true
}

func (sp *speculator) run() {
	defer sp.wg.Done()
	for {
		select {
		case <-sp.ctx.Done():
			return
		case job := <-sp.jobs:
			sp.execute(job)
		}
	}
}

func (sp *speculator) execute(job specJob) {
	digest := job.opts.FullDigest()
	keys := make([]compilecache.Key, 0, len(job.mod.Funcs))
	cold := false
	for _, f := range job.mod.SortedFuncs() {
		k := compilecache.Key{Fingerprint: f.Fingerprint(), Digest: digest}
		keys = append(keys, k)
		if !sp.srv.cache.PeekFull(k) {
			cold = true
		}
	}
	if !cold {
		sp.deduped.Add(1)
		return
	}

	// Strictly lower priority than admitted work: take a slot only when one
	// is free right now and nothing is waiting; otherwise drop the job.
	if sp.srv.queued.Load() > 0 {
		sp.dropped.Add(1)
		return
	}
	select {
	case sp.srv.slots <- struct{}{}:
	default:
		sp.dropped.Add(1)
		return
	}
	defer func() { <-sp.srv.slots }()

	ctx, cancel := context.WithCancel(sp.ctx)
	defer cancel()
	sp.mu.Lock()
	id := sp.nextRun
	sp.nextRun++
	sp.running[id] = cancel
	sp.mu.Unlock()
	defer func() {
		sp.mu.Lock()
		delete(sp.running, id)
		sp.mu.Unlock()
	}()

	_, err := core.CompileModuleContext(ctx, job.mod, job.opts)
	if err != nil {
		if isDeadline(err) {
			// Preempted or draining. The cache has already forgotten the
			// partial entries (context-error entries are never retained).
			sp.cancelled.Add(1)
		}
		// Deterministic compile errors are retained by the cache like any
		// demand compile's; the real request will surface them.
		return
	}
	sp.compiled.Add(1)
	sp.mu.Lock()
	for _, k := range keys {
		if len(sp.speculated) >= specWarmCap {
			break
		}
		sp.speculated[k] = struct{}{}
	}
	sp.mu.Unlock()
}

// SpecStatz is the /statz speculation section.
type SpecStatz struct {
	Workers   int   `json:"workers"`
	Scheduled int64 `json:"scheduled"`
	Compiled  int64 `json:"compiled"`
	WarmHits  int64 `json:"warm_hits"`
	Cancelled int64 `json:"cancelled"`
	Dropped   int64 `json:"dropped"`
	Deduped   int64 `json:"deduped"`
}

func (sp *speculator) statz(workers int) SpecStatz {
	return SpecStatz{
		Workers:   workers,
		Scheduled: sp.scheduled.Load(),
		Compiled:  sp.compiled.Load(),
		WarmHits:  sp.warmHits.Load(),
		Cancelled: sp.cancelled.Load(),
		Dropped:   sp.dropped.Load(),
		Deduped:   sp.deduped.Load(),
	}
}
