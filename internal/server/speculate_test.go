package server

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"prescount/internal/compilecache"
	"prescount/internal/ir"
)

// specSettled reports whether every scheduled speculation job has been
// accounted for (compiled, cancelled, dropped or deduped).
func specSettled(sp *speculator) bool {
	done := sp.compiled.Load() + sp.cancelled.Load() + sp.dropped.Load() + sp.deduped.Load()
	return done == sp.scheduled.Load() && len(sp.jobs) == 0
}

// TestSpeculationWarmsNeighbors: compiling at 4 banks precompiles the same
// kernel at 2 and 8 banks; the follow-up requests are full-layer warm hits
// and byte-identical to an on-demand compile.
func TestSpeculationWarmsNeighbors(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 4, SpecWorkers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, Banks: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if got := s.spec.scheduled.Load(); got != 2 {
		t.Fatalf("scheduled %d speculation jobs, want 2 (banks 8 and 2)", got)
	}
	waitFor(t, func() bool { return specSettled(s.spec) })
	if s.spec.compiled.Load() != 2 {
		t.Fatalf("speculation outcome: %+v", s.spec.statz(2))
	}

	// Both neighbors must now be present in the full layer.
	f, err := ir.Parse(kernelMIR)
	if err != nil {
		t.Fatal(err)
	}
	for _, banks := range []int{2, 8} {
		opts, _, err := s.compileOptions(&CompileRequest{Banks: banks})
		if err != nil {
			t.Fatal(err)
		}
		k := compilecache.Key{Fingerprint: f.Fingerprint(), Digest: opts.FullDigest()}
		if !s.cache.PeekFull(k) {
			t.Errorf("neighbor banks=%d not precompiled", banks)
		}
	}

	// The follow-up request at a neighbor is attributed as a warm hit...
	before := s.cache.Stats()
	resp, body = postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, Banks: 8, EmitMIR: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if got := s.spec.warmHits.Load(); got != 1 {
		t.Errorf("warm hits = %d, want 1", got)
	}
	// The request itself is a full-layer hit. (Its own speculation — banks
	// 16 — may add concurrent misses to the delta, so only hits are pinned.)
	if d := s.cache.Stats().Delta(before); d.FullHits != 1 {
		t.Errorf("neighbor request was not a full-layer hit: %+v", d)
	}

	// ...and byte-identical to an on-demand compile on a daemon that never
	// speculated.
	_, ts2 := newTestServer(t, Config{})
	_, plain := postJSON(t, ts2.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, Banks: 8, EmitMIR: true})
	var a, b CompileResponse
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(plain, &b); err != nil {
		t.Fatal(err)
	}
	if a.MIR != b.MIR || a.Report != b.Report || a.Alloc != b.Alloc {
		t.Errorf("speculative result differs from on-demand compile:\n%s\nvs\n%s", body, plain)
	}
}

// TestSpeculationDedup: re-requesting the seed does not re-speculate warm
// neighbors into real work.
func TestSpeculationDedup(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 4, SpecWorkers: 1})
	postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, Banks: 4})
	waitFor(t, func() bool { return specSettled(s.spec) })
	compiledOnce := s.spec.compiled.Load()
	postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, Banks: 4})
	waitFor(t, func() bool { return specSettled(s.spec) })
	if got := s.spec.compiled.Load(); got != compiledOnce {
		t.Errorf("recompiled warm neighbors: %d → %d speculative compiles", compiledOnce, got)
	}
	if s.spec.deduped.Load() == 0 {
		t.Error("dedup counter never moved")
	}
}

// TestSpeculationCancelledNotRetained: a speculative compile whose context
// is already dead (drain) counts as cancelled and leaves nothing in the
// cache — context-error entries are never retained.
func TestSpeculationCancelledNotRetained(t *testing.T) {
	s, err := New(Config{MaxInFlight: 2, SpecWorkers: 0, ModuleTokens: -1})
	if err != nil {
		t.Fatal(err)
	}
	sp := newSpeculator(s, 0) // no workers; execute driven by the test
	mod, err := ir.ParseModule(bigModuleMIR(4, 200))
	if err != nil {
		t.Fatal(err)
	}
	opts, _, err := s.compileOptions(&CompileRequest{Banks: 8})
	if err != nil {
		t.Fatal(err)
	}
	sp.cancel() // drain before the job runs
	sp.execute(specJob{mod: mod, opts: opts})
	if got := sp.cancelled.Load(); got != 1 {
		t.Fatalf("cancelled = %d, want 1", got)
	}
	digest := opts.FullDigest()
	for _, f := range mod.SortedFuncs() {
		k := compilecache.Key{Fingerprint: f.Fingerprint(), Digest: digest}
		if s.cache.PeekFull(k) {
			t.Errorf("cancelled speculation retained an entry for %s", f.Name)
		}
	}
	if len(s.slots) != 0 {
		t.Errorf("cancelled speculation leaked %d slots", len(s.slots))
	}
}

// TestSpeculationPreemptedByAdmission: a running speculative compile is
// cancelled the moment a real request has to queue, and its slot frees.
func TestSpeculationPreemptedByAdmission(t *testing.T) {
	s, err := New(Config{MaxInFlight: 1, SpecWorkers: 0, ModuleTokens: -1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sp := newSpeculator(s, 0)
	mod, err := ir.ParseModule(bigModuleMIR(64, 300))
	if err != nil {
		t.Fatal(err)
	}
	opts, _, err := s.compileOptions(&CompileRequest{Banks: 8})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sp.execute(specJob{mod: mod, opts: opts})
	}()
	// Wait until the speculative compile holds the only slot and registered
	// its cancel func.
	waitFor(t, func() bool {
		sp.mu.Lock()
		defer sp.mu.Unlock()
		return len(sp.running) == 1
	})
	sp.preempt()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("preempted speculation did not stop")
	}
	if got := sp.cancelled.Load(); got != 1 {
		t.Errorf("cancelled = %d, want 1", got)
	}
	if len(s.slots) != 0 {
		t.Errorf("preempted speculation held %d slots", len(s.slots))
	}
}

// TestSpeculationDrainStops: SetDraining stops the workers; in-queue jobs
// are abandoned and new compiles no longer speculate.
func TestSpeculationDrainStops(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 4, SpecWorkers: 2})
	postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, Banks: 4})
	waitFor(t, func() bool { return specSettled(s.spec) })
	s.SetDraining(true) // blocks until the workers exited
	scheduled := s.spec.scheduled.Load()
	// Draining servers still answer compiles but must not re-speculate.
	resp, body := postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, Banks: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining compile: status %d, body %s", resp.StatusCode, body)
	}
	if got := s.spec.scheduled.Load(); got != scheduled {
		t.Errorf("draining server scheduled %d new speculation jobs", got-scheduled)
	}
}

// TestSpeculationUnderEvictionPressure: a byte-capped cache under a
// speculation storm keeps admitted requests correct — eviction can only
// cost recomputes, never corrupt results. Runs under -race in CI, which
// also exercises the speculator/admission interleavings.
func TestSpeculationUnderEvictionPressure(t *testing.T) {
	// Reference outputs from a quiet, unlimited daemon.
	_, ref := newTestServer(t, Config{})
	corpus := Corpus(6)
	want := map[string]string{}
	for _, mir := range corpus {
		_, body := postJSON(t, ref.URL+"/v1/compile", CompileRequest{MIR: mir, Banks: 4, EmitMIR: true})
		var cr CompileResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		want[mir] = cr.MIR
	}

	// Tiny cache + speculation: every request storms two neighbors into a
	// cache that cannot hold them.
	s, ts := newTestServer(t, Config{MaxInFlight: 4, SpecWorkers: 2, CacheMaxBytes: 32 << 10})
	for round := 0; round < 3; round++ {
		for _, mir := range corpus {
			resp, body := postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: mir, Banks: 4, EmitMIR: true})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d, body %s", resp.StatusCode, body)
			}
			var cr CompileResponse
			if err := json.Unmarshal(body, &cr); err != nil {
				t.Fatal(err)
			}
			if cr.MIR != want[mir] {
				t.Fatalf("round %d: result diverged under eviction pressure", round)
			}
		}
	}
	waitFor(t, func() bool { return specSettled(s.spec) })
	if got, cap := s.Cache().Stats().BytesRetained, s.Cache().MaxBytes(); got > cap {
		t.Errorf("cache bytes retained %d exceeds cap %d", got, cap)
	}
}

// TestLoadgenSweep: the bank-sweep request stream against a speculating
// daemon earns warm hits; the same stream with speculation off earns none.
func TestLoadgenSweep(t *testing.T) {
	run := func(specWorkers int) *LoadgenResult {
		_, ts := newTestServer(t, Config{MaxInFlight: 4, SpecWorkers: specWorkers})
		res, err := RunLoadgen(LoadgenConfig{
			URL:         ts.URL,
			Concurrency: 2,
			Kernels:     6,
			Sweep:       true,
			RetryOn429:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	spec := run(1)
	nospec := run(0)
	if spec.Errors5xx != 0 || nospec.Errors5xx != 0 {
		t.Fatalf("5xx: spec=%d nospec=%d, want 0", spec.Errors5xx, nospec.Errors5xx)
	}
	if want := int64(18); spec.OK != want || nospec.OK != want {
		t.Fatalf("ok: spec=%d nospec=%d, want %d (6 kernels × 3 banks)", spec.OK, nospec.OK, want)
	}
	if nospec.Statz.Speculation != nil {
		t.Error("speculation-off daemon reported a speculation section")
	}
	sp := spec.Statz.Speculation
	if sp == nil {
		t.Fatal("speculating daemon reported no speculation section")
	}
	if sp.Scheduled == 0 || sp.Compiled == 0 {
		t.Errorf("speculation never ran: %+v", sp)
	}
	if sp.WarmHits == 0 {
		t.Errorf("sweep stream earned no warm hits: %+v", sp)
	}
}
