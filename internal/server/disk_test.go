package server

import (
	"encoding/json"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corruptAllEntries bit-flips the tail of every stored entry under dir.
func corruptAllEntries(t *testing.T, dir string) {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".pcr") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[len(data)-1] ^= 0xff
		n++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no disk entries to corrupt")
	}
}

// TestDiskCacheWarmRestart is the daemon-level persistence contract: a
// server restarted over the same disk directory turns cold memory misses
// into disk hits, and the served payloads are identical.
func TestDiskCacheWarmRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{MaxInFlight: 1, SpecWorkers: 0, DiskCacheDir: dir}

	// First life: compile, then drain (Close flushes the write-behind).
	s1, ts1 := newTestServer(t, cfg)
	resp, body1 := postJSON(t, ts1.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, Method: "bpc", EmitMIR: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first compile: status %d: %s", resp.StatusCode, body1)
	}
	st := s1.Statz()
	if st.Disk == nil {
		t.Fatal("statz has no disk section despite DiskCacheDir")
	}
	if st.Cache.DiskMisses != 1 || st.Cache.DiskHits != 0 {
		t.Fatalf("first life attribution: %+v", st.Cache)
	}
	s1.Close()

	// Second life: same dir, fresh memory. The compile must be a memory
	// miss AND a disk hit, and answer the same payload.
	s2, ts2 := newTestServer(t, cfg)
	resp, body2 := postJSON(t, ts2.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, Method: "bpc", EmitMIR: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restart compile: status %d: %s", resp.StatusCode, body2)
	}
	var r1, r2 CompileResponse
	if err := json.Unmarshal(body1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &r2); err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(r1.FuncResponse)
	j2, _ := json.Marshal(r2.FuncResponse)
	if string(j1) != string(j2) {
		t.Fatalf("disk-served response diverged:\nfirst:   %s\nrestart: %s", j1, j2)
	}
	st = s2.Statz()
	if st.Cache.FullHits != 0 || st.Cache.FullMisses != 1 {
		t.Fatalf("restart memory attribution: %+v", st.Cache)
	}
	if st.Cache.DiskHits != 1 || st.Cache.DiskMisses != 0 {
		t.Fatalf("restart disk attribution: %+v", st.Cache)
	}
	if st.Disk == nil || st.Disk.Hits != 1 || st.Disk.Entries == 0 {
		t.Fatalf("restart disk section: %+v", st.Disk)
	}

	// A repeat on the live server is a pure memory hit: the disk counters
	// must not move — the levels are attributed distinctly.
	resp, _ = postJSON(t, ts2.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, Method: "bpc", EmitMIR: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat: status %d", resp.StatusCode)
	}
	st = s2.Statz()
	if st.Cache.FullHits != 1 || st.Cache.DiskHits != 1 || st.Cache.DiskMisses != 0 {
		t.Fatalf("memory-hit attribution leaked into disk: %+v", st.Cache)
	}
	s2.Close()
}

// TestStatzDiskSectionAbsentWithoutDir pins that memory-only servers keep
// the old statz shape (no disk section, zeroed disk counters).
func TestStatzDiskSectionAbsentWithoutDir(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, SpecWorkers: 0})
	resp, _ := postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	st := s.Statz()
	if st.Disk != nil {
		t.Fatalf("disk section present without DiskCacheDir: %+v", st.Disk)
	}
	if st.Cache.DiskHits != 0 || st.Cache.DiskMisses != 0 {
		t.Fatalf("disk counters moved without a disk cache: %+v", st.Cache)
	}
}

// TestDiskCacheCorruptEntryServes pins the no-5xx corruption contract at
// the HTTP layer: a corrupted disk entry is quarantined and the request
// recompiles, answering 200.
func TestDiskCacheCorruptEntryServes(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{MaxInFlight: 1, SpecWorkers: 0, DiskCacheDir: dir}
	s1, ts1 := newTestServer(t, cfg)
	if resp, _ := postJSON(t, ts1.URL+"/v1/compile", CompileRequest{MIR: kernelMIR}); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed compile failed: %d", resp.StatusCode)
	}
	s1.Close()

	corruptAllEntries(t, dir)

	s2, ts2 := newTestServer(t, cfg)
	defer s2.Close()
	resp, body := postJSON(t, ts2.URL+"/v1/compile", CompileRequest{MIR: kernelMIR})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corrupt disk entry surfaced as %d: %s", resp.StatusCode, body)
	}
	st := s2.Statz()
	if st.Disk.Corrupt == 0 {
		t.Fatalf("corruption not detected: %+v", st.Disk)
	}
	if st.Cache.DiskHits != 0 {
		t.Fatalf("corrupt entry counted as a disk hit: %+v", st.Cache)
	}
}
