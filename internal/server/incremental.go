package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"prescount/internal/core"
)

// moduleToken derives the deterministic reuse token of a ModulePrior: a
// hash over the producing options digest and the sorted set of function
// fingerprints. Determinism matters — the same module compiled twice under
// the same options yields the same token, so clients can cache tokens
// across their own restarts and a resubmitted token always refers to the
// results it was minted for.
func moduleToken(p *core.ModulePrior) string {
	fps := make([][sha256.Size]byte, 0, len(p.PerFunc))
	for fp := range p.PerFunc {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool {
		for b := 0; b < sha256.Size; b++ {
			if fps[i][b] != fps[j][b] {
				return fps[i][b] < fps[j][b]
			}
		}
		return false
	})
	h := sha256.New()
	var dig [8]byte
	binary.LittleEndian.PutUint64(dig[:], p.Digest)
	h.Write(dig[:])
	for _, fp := range fps {
		h.Write(fp[:])
	}
	return fmt.Sprintf("m1-%x", h.Sum(nil)[:16])
}

// tokenStore is a count-capped LRU of module priors keyed by token. Counts,
// not bytes, bound it: the *Result values inside a prior are shared with
// the compile cache (and with in-flight responses), so charging their bytes
// twice would double-count; capping the number of distinct module states
// bounds the extra retention to the per-function pointers.
type tokenStore struct {
	mu  sync.Mutex // guards: m, lru
	max int        // immutable after newTokenStore
	m   map[string]*list.Element
	lru *list.List // front = most recent; values are *tokenEntry
}

type tokenEntry struct {
	token string
	prior *core.ModulePrior
}

func newTokenStore(max int) *tokenStore {
	return &tokenStore{max: max, m: map[string]*list.Element{}, lru: list.New()}
}

// Put stores the prior under its deterministic token and returns the token.
func (ts *tokenStore) Put(p *core.ModulePrior) string {
	tok := moduleToken(p)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if el, ok := ts.m[tok]; ok {
		ts.lru.MoveToFront(el)
		// Refresh the value: a re-derived prior for the same token is
		// semantically identical, but the new one may share more entries
		// with the current cache generation.
		el.Value.(*tokenEntry).prior = p
		return tok
	}
	ts.m[tok] = ts.lru.PushFront(&tokenEntry{token: tok, prior: p})
	for ts.max > 0 && ts.lru.Len() > ts.max {
		tail := ts.lru.Back()
		ts.lru.Remove(tail)
		delete(ts.m, tail.Value.(*tokenEntry).token)
	}
	return tok
}

// Get returns the prior for tok, or nil when unknown (expired from the LRU
// or never minted here — the caller compiles from scratch either way).
func (ts *tokenStore) Get(tok string) *core.ModulePrior {
	if tok == "" {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	el, ok := ts.m[tok]
	if !ok {
		return nil
	}
	ts.lru.MoveToFront(el)
	return el.Value.(*tokenEntry).prior
}

// Len reports the number of retained module states.
func (ts *tokenStore) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.lru.Len()
}
