package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"prescount/internal/ir"
	"prescount/internal/workload"
)

// LoadgenConfig drives one load-generation run against a live daemon.
type LoadgenConfig struct {
	// URL is the target base URL requests are sent to (e.g.
	// http://127.0.0.1:8080) — a daemon, or a prescountrouter fronting a
	// fleet.
	URL string `json:"url"`
	// URLs lists the individual backend daemons when URL is a router:
	// RunLoadgen scrapes each for its final statistics (LoadgenResult.
	// Backends), so fleet runs record per-node cache and disk activity the
	// router's own statz cannot see.
	URLs []string `json:"urls,omitempty"`
	// Concurrency is the number of parallel clients (default 64).
	Concurrency int `json:"concurrency"`
	// Requests is the total request count across clients (default 2048).
	Requests int `json:"requests"`
	// Kernels bounds the distinct-kernel corpus replayed round-robin
	// (default 16). Small corpora under heavy repetition model the
	// repeated-submission traffic the cache exists for.
	Kernels int `json:"kernels"`
	// KernelInstrs, when > 0, replaces the suite-drawn corpus with
	// uniformly sized random kernels of that many instructions.
	// Saturation runs use this to make every cold compile long enough to
	// overlap request arrivals even on a single-CPU runner.
	KernelInstrs int `json:"kernel_instrs,omitempty"`
	// Method is the allocation method requested (default bpc).
	Method string `json:"method"`
	// Simulate asks the server to execute each allocated kernel too.
	Simulate bool `json:"simulate,omitempty"`
	// TimeoutMS is the per-request timeout_ms passed to the server
	// (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// RetryOn429 makes clients honor a 429 by backing off briefly and
	// retrying, modeling a well-behaved caller (default true via
	// RunLoadgen when not saturating).
	RetryOn429 bool `json:"retry_on_429"`
	// Sweep switches the request stream to bank-sweep exploration: the
	// fleet compiles every corpus kernel at SweepBanks[0], then the whole
	// corpus again at each subsequent bank count. Each pass's kernels are
	// the sweep neighbors of the previous pass — the traffic shape the
	// daemon's speculative precompiler targets.
	Sweep bool `json:"sweep,omitempty"`
	// SweepBanks is the bank-count walk of sweep mode (default {4, 8, 2}:
	// both follow-up passes are adjacent to the seed pass).
	SweepBanks []int `json:"sweep_banks,omitempty"`
	// ScrapeEvery samples /statz during the run for the gauge highwater
	// marks (default 100ms).
	ScrapeEvery time.Duration `json:"-"`
}

// LatencySummary is the classic percentile set over request wall times.
type LatencySummary struct {
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// LoadgenResult is one run's outcome — the BENCH_serve.json payload.
type LoadgenResult struct {
	Config        LoadgenConfig  `json:"config"`
	DurationS     float64        `json:"duration_s"`
	Sent          int64          `json:"sent"`
	OK            int64          `json:"ok"`
	Rejected429   int64          `json:"rejected_429"`
	Deadline504   int64          `json:"deadline_504"`
	Errors4xx     int64          `json:"errors_4xx"`
	Errors5xx     int64          `json:"errors_5xx"`
	Retries       int64          `json:"retries"`
	ThroughputRPS float64        `json:"throughput_rps"`
	Latency       LatencySummary `json:"latency"`
	// MaxInFlightSeen / MaxQueuedSeen are gauge highwater marks scraped
	// from /statz while the run was in progress.
	MaxInFlightSeen int64 `json:"max_inflight_seen"`
	MaxQueuedSeen   int64 `json:"max_queued_seen"`
	// Statz is the daemon's final snapshot (cache hit rates, histograms).
	// When URL is a router this decode only fills the fields the router
	// shares with the daemon schema; the per-node truth is in Backends.
	Statz *Statz `json:"statz,omitempty"`
	// Backends holds the final snapshot of each cfg.URLs daemon, in cfg
	// order (fleet runs only).
	Backends []*Statz `json:"backends,omitempty"`
}

// FleetDiskHits sums the disk-cache hits and misses across the per-backend
// snapshots — the warm-restart gate: after a fleet restart on the same disk
// directories, hits must be nonzero.
func (r *LoadgenResult) FleetDiskHits() (hits, misses int64) {
	for _, st := range r.Backends {
		if st != nil && st.Disk != nil {
			hits += st.Disk.Hits
			misses += st.Disk.Misses
		}
	}
	return hits, misses
}

// corpusMaxBytes bounds the rendered size of a corpus kernel. The suites
// contain a few giant unrolled kernels that take seconds per cold compile;
// those model the batch pipeline, not interactive serve traffic, so the
// replay corpus skips them.
const corpusMaxBytes = 64 << 10

// Corpus renders n distinct workload kernels (drawn from the DSA-OP and
// CNN-KERNEL suites, topped up with deterministic random kernels) as
// textual MIR, the replay set of the load generator.
func Corpus(n int) []string {
	return CorpusSized(n, 0)
}

// CorpusSized is Corpus with an explicit instruction count for the random
// kernels. instrs <= 0 gives the default mix (suite kernels topped up with
// 120-instruction random ones); instrs > 0 skips the suite kernels so every
// corpus entry costs a full cold compile of that size.
func CorpusSized(n, instrs int) []string {
	if n <= 0 {
		n = 16
	}
	var out []string
	if instrs <= 0 {
		instrs = 120
		for _, suite := range []*workload.Suite{workload.DSAOP(), workload.CNN()} {
			for _, p := range suite.Programs {
				for _, f := range p.Funcs() {
					if len(out) >= n {
						return out
					}
					if src := ir.Print(f); len(src) <= corpusMaxBytes {
						out = append(out, src)
					}
				}
			}
		}
	}
	for seed := int64(1); len(out) < n; seed++ {
		out = append(out, ir.Print(workload.RandomSized(seed, instrs)))
	}
	return out
}

// RunLoadgen replays the kernel corpus against cfg.URL at the target
// concurrency and reports throughput, latency percentiles and the daemon's
// own statistics. A 5xx from the server is counted, never retried — the
// acceptance gate is zero of them.
func RunLoadgen(cfg LoadgenConfig) (*LoadgenResult, error) {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 64
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 2048
	}
	if cfg.Kernels <= 0 {
		cfg.Kernels = 16
	}
	if cfg.Method == "" {
		cfg.Method = "bpc"
	}
	if cfg.ScrapeEvery <= 0 {
		cfg.ScrapeEvery = 100 * time.Millisecond
	}
	if cfg.Sweep {
		if len(cfg.SweepBanks) == 0 {
			cfg.SweepBanks = []int{4, 8, 2}
		}
		// One full walk: every kernel at every bank count.
		cfg.Requests = cfg.Kernels * len(cfg.SweepBanks)
	}
	corpus := CorpusSized(cfg.Kernels, cfg.KernelInstrs)
	client := &http.Client{}

	res := &LoadgenResult{Config: cfg}
	var (
		next      atomic.Int64
		latencies = make([][]int64, cfg.Concurrency)
		wg        sync.WaitGroup
	)

	// Mid-run gauge sampler: the loadgen's view of the daemon's admission
	// state, proving the limits engage while traffic is in flight.
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		t := time.NewTicker(cfg.ScrapeEvery)
		defer t.Stop()
		for {
			select {
			case <-stopScrape:
				return
			case <-t.C:
				if st, err := scrapeStatz(client, cfg.URL); err == nil {
					if st.InFlight > res.MaxInFlightSeen {
						res.MaxInFlightSeen = st.InFlight
					}
					if st.Queued > res.MaxQueuedSeen {
						res.MaxQueuedSeen = st.Queued
					}
				}
			}
		}
	}()

	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.Requests) {
					return
				}
				mir := corpus[int(i)%len(corpus)]
				banks := 0
				if cfg.Sweep {
					// Pass p compiles the whole corpus at SweepBanks[p], so
					// a kernel's later passes arrive a corpus-width after
					// the pass that seeded their speculation.
					banks = cfg.SweepBanks[(int(i)/len(corpus))%len(cfg.SweepBanks)]
				}
				for {
					status, latNS, err := postCompile(client, cfg, mir, banks)
					res.countStatus(status, err)
					if status == http.StatusTooManyRequests && cfg.RetryOn429 {
						atomic.AddInt64(&res.Retries, 1)
						time.Sleep(20 * time.Millisecond)
						continue
					}
					if status == http.StatusOK {
						// Latency of accepted requests only; rejections
						// return in microseconds and would skew percentiles.
						latencies[w] = append(latencies[w], latNS)
					}
					break
				}
			}
		}(w)
	}
	wg.Wait()
	res.DurationS = time.Since(start).Seconds()
	close(stopScrape)
	scrapeWG.Wait()

	var all []int64
	for _, l := range latencies {
		all = append(all, l...)
	}
	res.Latency = summarize(all)
	if res.DurationS > 0 {
		res.ThroughputRPS = float64(res.OK) / res.DurationS
	}
	if st, err := scrapeStatz(client, cfg.URL); err == nil {
		res.Statz = st
	}
	for _, u := range cfg.URLs {
		st, err := scrapeStatz(client, u)
		if err != nil {
			st = nil // a dead backend records as a hole, not a run failure
		}
		res.Backends = append(res.Backends, st)
	}
	return res, nil
}

// countStatus classifies one response status into the result counters.
func (r *LoadgenResult) countStatus(status int, err error) {
	atomic.AddInt64(&r.Sent, 1)
	switch {
	case err != nil && status == 0:
		atomic.AddInt64(&r.Errors5xx, 1) // transport failure counts against the server
	case status == http.StatusOK:
		atomic.AddInt64(&r.OK, 1)
	case status == http.StatusTooManyRequests:
		atomic.AddInt64(&r.Rejected429, 1)
	case status == http.StatusGatewayTimeout:
		atomic.AddInt64(&r.Deadline504, 1)
	case status >= 500:
		atomic.AddInt64(&r.Errors5xx, 1)
	default:
		atomic.AddInt64(&r.Errors4xx, 1)
	}
}

// postCompile sends one compile request and returns the HTTP status and
// the request's wall time. status 0 means the transport failed; banks 0
// uses the server default.
func postCompile(client *http.Client, cfg LoadgenConfig, mir string, banks int) (int, int64, error) {
	req := CompileRequest{
		MIR:       mir,
		Banks:     banks,
		Method:    cfg.Method,
		Simulate:  cfg.Simulate,
		TimeoutMS: cfg.TimeoutMS,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	resp, err := client.Post(cfg.URL+"/v1/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, time.Since(start).Nanoseconds(), err
	}
	// Drain so the connection is reused; the loadgen only needs the status.
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, time.Since(start).Nanoseconds(), nil
}

// scrapeStatz fetches and decodes the daemon's /statz document.
func scrapeStatz(client *http.Client, baseURL string) (*Statz, error) {
	resp, err := client.Get(baseURL + "/statz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("statz: HTTP %d", resp.StatusCode)
	}
	st := &Statz{}
	if err := json.NewDecoder(resp.Body).Decode(st); err != nil {
		return nil, err
	}
	return st, nil
}

func summarize(ns []int64) LatencySummary {
	if len(ns) == 0 {
		return LatencySummary{}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	at := func(p float64) float64 {
		i := int(p * float64(len(ns)-1))
		return float64(ns[i]) / 1e6
	}
	var sum int64
	for _, v := range ns {
		sum += v
	}
	return LatencySummary{
		P50MS:  at(0.50),
		P90MS:  at(0.90),
		P99MS:  at(0.99),
		MaxMS:  float64(ns[len(ns)-1]) / 1e6,
		MeanMS: float64(sum) / float64(len(ns)) / 1e6,
	}
}
