package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCompileNewMethods(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, method := range []string{"binpack", "coloring"} {
		resp, body := postJSON(t, ts.URL+"/v1/compile",
			CompileRequest{MIR: kernelMIR, Method: method, EmitMIR: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", method, resp.StatusCode, body)
		}
		var cr CompileResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		if cr.MIR == "" || cr.Report.Instrs <= 0 {
			t.Errorf("%s: empty result: %s", method, body)
		}
	}
}

func TestCompileColoringTimeoutField(t *testing.T) {
	// A generous deterministic work budget compiles fine; the field also
	// parses from the raw-MIR query envelope.
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/compile",
		CompileRequest{MIR: kernelMIR, Method: "coloring", ColoringTimeoutMS: 5000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	qresp, err := http.Post(ts.URL+"/v1/compile?method=coloring&coloring_timeout_ms=5000",
		"text/plain", strings.NewReader(kernelMIR))
	if err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query envelope status %d", qresp.StatusCode)
	}
	resp, body = postJSON(t, ts.URL+"/v1/compile",
		CompileRequest{MIR: kernelMIR, Method: "coloring", ColoringTimeoutMS: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative coloring_timeout_ms: status %d, body %s", resp.StatusCode, body)
	}
}

// TestColoringHonorsRequestDeadline asserts the daemon answers 504 — never
// hangs — when the request deadline is already gone before the coloring
// compile starts: the context threads through core into RunColoring's
// phase-boundary checks.
func TestColoringHonorsRequestDeadline(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/compile?method=coloring",
		strings.NewReader(kernelMIR)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", w.Code, w.Body)
	}
	if got := decodeError(t, w.Body.Bytes()); got.Code != CodeDeadline {
		t.Errorf("code %q, want %q", got.Code, CodeDeadline)
	}
}

func TestCompilePortfolioModule(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/compile/module",
		CompileRequest{MIR: moduleMIR, Method: "portfolio", EmitMIR: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var mr ModuleResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Funcs) != 2 {
		t.Fatalf("funcs = %d, want 2", len(mr.Funcs))
	}
	for _, fr := range mr.Funcs {
		if fr.Method == "" {
			t.Errorf("%s: no winner attribution in portfolio response", fr.Func)
		}
		if fr.MIR == "" {
			t.Errorf("%s: emit_mir missing", fr.Func)
		}
	}
	if mr.ModuleToken != "" {
		t.Errorf("portfolio compile minted a module token %q", mr.ModuleToken)
	}

	st := s.Statz()
	if st.Methods == nil {
		t.Fatal("statz has no methods section after a portfolio request")
	}
	if st.Methods.Requests["portfolio"] != 1 {
		t.Errorf("methods.requests[portfolio] = %d, want 1", st.Methods.Requests["portfolio"])
	}
	wins := int64(0)
	for _, n := range st.Methods.RacerWins {
		wins += n
	}
	if wins != 2 {
		t.Errorf("racer wins sum = %d, want 2 (one per function): %+v", wins, st.Methods.RacerWins)
	}
}

func TestCompilePortfolioDeterministicAcrossRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, first := postJSON(t, ts.URL+"/v1/compile/module",
		CompileRequest{MIR: moduleMIR, Method: "portfolio", EmitMIR: true})
	for i := 0; i < 3; i++ {
		_, again := postJSON(t, ts.URL+"/v1/compile/module",
			CompileRequest{MIR: moduleMIR, Method: "portfolio", EmitMIR: true})
		var a, b ModuleResponse
		if err := json.Unmarshal(first, &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(again, &b); err != nil {
			t.Fatal(err)
		}
		if a.Totals != b.Totals {
			t.Fatalf("request %d: totals differ: %+v vs %+v", i, b.Totals, a.Totals)
		}
		for j := range a.Funcs {
			if a.Funcs[j].Method != b.Funcs[j].Method || a.Funcs[j].MIR != b.Funcs[j].MIR {
				t.Fatalf("request %d: %s winner/bytes differ", i, a.Funcs[j].Func)
			}
		}
	}
}

func TestCompileAutoMode(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/compile",
		CompileRequest{MIR: kernelMIR, Method: "auto"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var cr CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	// The kernel is trivially low-pressure: the default selector claims it.
	if !cr.Selected || cr.Method != "bpc" {
		t.Errorf("auto mode: selected=%v method=%q, want selector pick of bpc", cr.Selected, cr.Method)
	}
	st := s.Statz()
	if st.Methods == nil || st.Methods.Requests["auto"] != 1 {
		t.Errorf("statz did not count the auto request: %+v", st.Methods)
	}
	if st.Methods != nil && st.Methods.SelectorPicks != 1 {
		t.Errorf("selector_picks = %d, want 1", st.Methods.SelectorPicks)
	}
}

func TestBatchRejectsPortfolioModes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	breq := BatchRequest{Entries: []CompileRequest{{MIR: kernelMIR, Method: "portfolio"}}}
	body, _ := json.Marshal(breq)
	resp, err := http.Post(ts.URL+"/v1/compile/batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 1 || br.Results[0].Error == nil {
		t.Fatalf("batch entry with method=portfolio did not error: %+v", br.Results)
	}
	if br.Results[0].Error.Code != CodeBadRequest {
		t.Errorf("code %q, want %q", br.Results[0].Error.Code, CodeBadRequest)
	}
}

func TestStatzPerMethodRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, m := range []string{"", "bpc", "binpack", "coloring", "brc"} {
		postJSON(t, ts.URL+"/v1/compile", CompileRequest{MIR: kernelMIR, Method: m})
	}
	st := s.Statz()
	if st.Methods == nil {
		t.Fatal("no methods section")
	}
	want := map[string]int64{"bpc": 2, "binpack": 1, "coloring": 1, "brc": 1}
	for m, n := range want {
		if st.Methods.Requests[m] != n {
			t.Errorf("requests[%s] = %d, want %d", m, st.Methods.Requests[m], n)
		}
	}
}
