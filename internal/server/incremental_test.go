package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"prescount/internal/core"
	"prescount/internal/ir"
	"prescount/internal/workload"
)

// editedModuleMIR is moduleMIR with beta's body changed (alpha unchanged).
const editedModuleMIR = `module pair
func @alpha {
 entry:
  x1 = iconst 0
  %0:fp = fload x1, 0
  %1:fp = fadd %0, %0
  fstore %1, x1, 1
  ret
}
func @beta {
 entry:
  x1 = iconst 0
  %0:fp = fload x1, 2
  %1:fp = fadd %0, %0
  %2:fp = fmul %1, %0
  fstore %2, x1, 3
  ret
}
`

func postModule(t *testing.T, url string, req CompileRequest) (*http.Response, ModuleResponse) {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/compile/module", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var mr ModuleResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	return resp, mr
}

// TestModuleTokenRoundTrip: a module compile mints a token; recompiling the
// unchanged module under that token reuses every function and produces the
// same output.
func TestModuleTokenRoundTrip(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, first := postModule(t, ts.URL, CompileRequest{MIR: moduleMIR, EmitMIR: true})
	if first.ModuleToken == "" {
		t.Fatal("module compile minted no token")
	}
	if first.ReusedFuncs != 0 || first.CompiledFuncs != 2 {
		t.Fatalf("first compile: reused=%d compiled=%d, want 0/2", first.ReusedFuncs, first.CompiledFuncs)
	}

	_, second := postModule(t, ts.URL, CompileRequest{MIR: moduleMIR, EmitMIR: true, PriorToken: first.ModuleToken})
	if second.ReusedFuncs != 2 || second.CompiledFuncs != 0 {
		t.Errorf("token recompile: reused=%d compiled=%d, want 2/0", second.ReusedFuncs, second.CompiledFuncs)
	}
	if second.ModuleToken != first.ModuleToken {
		t.Errorf("token changed across identical compiles: %q vs %q", second.ModuleToken, first.ModuleToken)
	}
	for i := range first.Funcs {
		if first.Funcs[i] != second.Funcs[i] {
			t.Errorf("func %s differs under token reuse:\n%+v\nvs\n%+v",
				first.Funcs[i].Func, first.Funcs[i], second.Funcs[i])
		}
	}
	if first.Totals != second.Totals {
		t.Errorf("totals differ: %+v vs %+v", first.Totals, second.Totals)
	}

	st := s.Statz()
	if st.Incremental == nil {
		t.Fatal("no incremental statz section")
	}
	if st.Incremental.TokenHits != 1 || st.Incremental.TokenMisses != 0 {
		t.Errorf("token hits/misses = %d/%d, want 1/0", st.Incremental.TokenHits, st.Incremental.TokenMisses)
	}
	if st.Incremental.ReusedFuncs != 2 {
		t.Errorf("reused funcs = %d, want 2", st.Incremental.ReusedFuncs)
	}
	if st.Incremental.TokensRetained != 1 {
		t.Errorf("tokens retained = %d, want 1", st.Incremental.TokensRetained)
	}
}

// TestModuleTokenPartialEdit: editing one function recompiles exactly it;
// the output must match a from-scratch compile of the edited module.
func TestModuleTokenPartialEdit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, first := postModule(t, ts.URL, CompileRequest{MIR: moduleMIR})
	_, inc := postModule(t, ts.URL, CompileRequest{MIR: editedModuleMIR, EmitMIR: true, PriorToken: first.ModuleToken})
	if inc.ReusedFuncs != 1 || inc.CompiledFuncs != 1 {
		t.Errorf("edited recompile: reused=%d compiled=%d, want 1/1", inc.ReusedFuncs, inc.CompiledFuncs)
	}

	// Fresh server, no prior: the incremental result must be byte-identical.
	_, ts2 := newTestServer(t, Config{})
	_, fresh := postModule(t, ts2.URL, CompileRequest{MIR: editedModuleMIR, EmitMIR: true})
	for i := range fresh.Funcs {
		if fresh.Funcs[i] != inc.Funcs[i] {
			t.Errorf("func %s differs from a fresh compile:\n%+v\nvs\n%+v",
				fresh.Funcs[i].Func, fresh.Funcs[i], inc.Funcs[i])
		}
	}
	if fresh.Totals != inc.Totals {
		t.Errorf("totals differ from fresh compile: %+v vs %+v", fresh.Totals, inc.Totals)
	}
}

// TestModuleTokenUnknown: an unknown/expired token compiles from scratch,
// never errors.
func TestModuleTokenUnknown(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, mr := postModule(t, ts.URL, CompileRequest{MIR: moduleMIR, PriorToken: "m1-feedfacedeadbeef"})
	if mr.ReusedFuncs != 0 || mr.CompiledFuncs != 2 {
		t.Errorf("unknown token: reused=%d compiled=%d, want 0/2", mr.ReusedFuncs, mr.CompiledFuncs)
	}
	if st := s.Statz(); st.Incremental.TokenMisses != 1 {
		t.Errorf("token misses = %d, want 1", st.Incremental.TokenMisses)
	}
}

// TestModuleTokenOptionsMismatch: a token is only honored under the options
// it was minted for — the same module at a different bank count recompiles
// everything (core rejects the prior by digest).
func TestModuleTokenOptionsMismatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, first := postModule(t, ts.URL, CompileRequest{MIR: moduleMIR, Banks: 2})
	_, second := postModule(t, ts.URL, CompileRequest{MIR: moduleMIR, Banks: 4, PriorToken: first.ModuleToken})
	if second.ReusedFuncs != 0 || second.CompiledFuncs != 2 {
		t.Errorf("cross-options token: reused=%d compiled=%d, want 0/2", second.ReusedFuncs, second.CompiledFuncs)
	}
}

// TestModuleTokenVerifyMintsNone: verified compiles bypass the prior AND
// mint no token (a reused result would skip the verification).
func TestModuleTokenVerifyMintsNone(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, first := postModule(t, ts.URL, CompileRequest{MIR: moduleMIR})
	_, verified := postModule(t, ts.URL, CompileRequest{MIR: moduleMIR, Verify: true, PriorToken: first.ModuleToken})
	if verified.ModuleToken != "" {
		t.Errorf("verified compile minted token %q, want none", verified.ModuleToken)
	}
	if verified.ReusedFuncs != 0 {
		t.Errorf("verified compile reused %d funcs, want 0", verified.ReusedFuncs)
	}
}

// TestModuleTokensDisabled: ModuleTokens < 0 turns the feature off — no
// token minted, prior_token ignored.
func TestModuleTokensDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{ModuleTokens: -1})
	_, mr := postModule(t, ts.URL, CompileRequest{MIR: moduleMIR, PriorToken: "m1-ffff"})
	if mr.ModuleToken != "" {
		t.Errorf("disabled token store minted %q", mr.ModuleToken)
	}
	if st := s.Statz(); st.Incremental != nil {
		t.Error("statz has an incremental section with tokens disabled")
	}
}

// TestModuleTokenQueryParam covers the raw-MIR envelope's prior_token.
func TestModuleTokenQueryParam(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, first := postModule(t, ts.URL, CompileRequest{MIR: moduleMIR})
	resp, err := http.Post(ts.URL+"/v1/compile/module?prior_token="+first.ModuleToken,
		"text/plain", strings.NewReader(moduleMIR))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr ModuleResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.ReusedFuncs != 2 {
		t.Errorf("query-param token reused %d funcs, want 2", mr.ReusedFuncs)
	}
}

// TestTokenStoreLRU pins the count cap: the store holds at most max module
// states, evicting the least recently used.
func TestTokenStoreLRU(t *testing.T) {
	ts := newTokenStore(2)
	toks := make([]string, 3)
	for i := range toks {
		f := workload.RandomSized(int64(300+i), 40)
		prior := &core.ModulePrior{
			Digest:  uint64(i),
			PerFunc: map[ir.Fingerprint]*core.Result{f.Fingerprint(): {}},
		}
		toks[i] = ts.Put(prior)
	}
	if ts.Len() != 2 {
		t.Fatalf("store holds %d entries, want 2", ts.Len())
	}
	if ts.Get(toks[0]) != nil {
		t.Error("oldest token survived past the cap")
	}
	if ts.Get(toks[1]) == nil || ts.Get(toks[2]) == nil {
		t.Error("recent tokens evicted")
	}
	// Touching an entry protects it from the next eviction.
	ts.Get(toks[1])
	f := workload.RandomSized(999, 40)
	ts.Put(&core.ModulePrior{Digest: 99, PerFunc: map[ir.Fingerprint]*core.Result{f.Fingerprint(): {}}})
	if ts.Get(toks[1]) == nil {
		t.Error("recently used token evicted before the LRU one")
	}
	if ts.Get(toks[2]) != nil {
		t.Error("LRU token survived eviction")
	}
}

// TestModuleTokenDeterministic: the token is a pure function of content and
// options — two servers mint the same token for the same request.
func TestModuleTokenDeterministic(t *testing.T) {
	_, ts1 := newTestServer(t, Config{})
	_, ts2 := newTestServer(t, Config{})
	_, a := postModule(t, ts1.URL, CompileRequest{MIR: moduleMIR})
	_, b := postModule(t, ts2.URL, CompileRequest{MIR: moduleMIR})
	if a.ModuleToken != b.ModuleToken {
		t.Errorf("tokens differ across servers: %q vs %q", a.ModuleToken, b.ModuleToken)
	}
	if !strings.HasPrefix(a.ModuleToken, "m1-") {
		t.Errorf("token %q lacks the m1- version prefix", a.ModuleToken)
	}
}

// TestModuleTokenRenameOnlyEdit: renaming every function (content
// unchanged) still reuses everything — fingerprints elide names.
func TestModuleTokenRenameOnlyEdit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, first := postModule(t, ts.URL, CompileRequest{MIR: moduleMIR})
	renamed := strings.ReplaceAll(strings.ReplaceAll(moduleMIR, "@alpha", "@gamma"), "@beta", "@delta")
	_, second := postModule(t, ts.URL, CompileRequest{MIR: renamed, EmitMIR: true, PriorToken: first.ModuleToken})
	if second.ReusedFuncs != 2 {
		t.Errorf("rename-only edit reused %d funcs, want 2", second.ReusedFuncs)
	}
	for i, want := range []string{"delta", "gamma"} {
		if second.Funcs[i].Func != want {
			t.Errorf("funcs[%d] = %q, want %q", i, second.Funcs[i].Func, want)
		}
		if !strings.Contains(second.Funcs[i].MIR, "@"+want) {
			t.Errorf("reused MIR for %s carries a stale name:\n%s", want, second.Funcs[i].MIR)
		}
	}
}

// bigModuleMIR renders n random kernels of size instrs as one module — a
// compile long enough to observe and preempt.
func bigModuleMIR(n, instrs int) string {
	var sb strings.Builder
	sb.WriteString("module big\n")
	for i := 0; i < n; i++ {
		src := ir.Print(workload.RandomSized(int64(7000+i), instrs))
		sb.WriteString(strings.Replace(src, "func @", fmt.Sprintf("func @k%02d_", i), 1))
		sb.WriteByte('\n')
	}
	return sb.String()
}
