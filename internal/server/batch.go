package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"prescount/internal/compilecache"
	"prescount/internal/core"
	"prescount/internal/ir"
	"prescount/internal/sim"
)

// POST /v1/compile/batch compiles many independent kernels in one request.
// The batch is the fleet's amortization unit: identical (fingerprint,
// options) entries are compiled once and fanned back to every duplicate,
// and the unique remainder shares the server's admission-controlled worker
// slots instead of racing through the queue as separate requests.

// BatchRequest is the /v1/compile/batch envelope. Each entry is an
// independent single-function CompileRequest; per-entry TimeoutMS and
// PriorToken are ignored (the batch-level deadline covers every entry).
type BatchRequest struct {
	Entries []CompileRequest `json:"entries"`
	// TimeoutMS bounds the whole batch (capped at the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchEntryResult is one entry's outcome, at the entry's request index.
// Exactly one of OK / Error is set.
type BatchEntryResult struct {
	OK *FuncResponse `json:"ok,omitempty"`
	// Error carries the same code vocabulary as the single-compile
	// endpoints; entries fail independently (a parse error in one entry
	// never fails its neighbors).
	Error *errorResponse `json:"error,omitempty"`
}

// BatchResponse is the /v1/compile/batch success body. Results are in
// request order, one per entry.
type BatchResponse struct {
	Results []BatchEntryResult `json:"results"`
	// Deduped counts entries satisfied by another identical entry of the
	// same batch (they share one compile).
	Deduped int   `json:"deduped"`
	WallNS  int64 `json:"wall_ns"`
}

// batchKey identifies one unique compile inside a batch: content
// fingerprint plus everything that can change the response payload.
type batchKey struct {
	fp       ir.Fingerprint
	digest   uint64
	simulate bool
	vliw     bool
	emitMIR  bool
	verify   bool
	validate bool
}

// batchUnit is one unique compile and the entry indices it serves.
type batchUnit struct {
	f       *ir.Func
	opts    core.Options
	req     CompileRequest
	indices []int

	res *core.Result
	sim *SimJSON
	err *errorResponse
}

// maxBatchEntries bounds one batch request; bigger batches should be split
// by the client (or the router, which regroups per backend anyway).
const maxBatchEntries = 1024

func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request) {
	total := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, CodeBadRequest, "POST only")
		return
	}
	s.metrics.total.Add(1)
	s.metrics.batchRequests.Add(1)

	req, status, err := decodeBatchRequest(w, r, s.cfg.MaxBody)
	if err != nil {
		code := CodeBadRequest
		if status == http.StatusRequestEntityTooLarge {
			code = CodeTooLarge
		}
		s.fail(w, status, code, err.Error())
		return
	}
	if len(req.Entries) == 0 {
		s.fail(w, http.StatusBadRequest, CodeBadRequest, "empty batch")
		return
	}
	if len(req.Entries) > maxBatchEntries {
		s.fail(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("%d entries; max %d per batch", len(req.Entries), maxBatchEntries))
		return
	}
	s.metrics.batchEntries.Add(int64(len(req.Entries)))

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Resolve each entry to its options and parsed function, then collapse
	// identical compiles. Entries that fail to parse or validate get their
	// error recorded now and never occupy a worker.
	results := make([]BatchEntryResult, len(req.Entries))
	names := make([]string, len(req.Entries))
	units := map[batchKey]*batchUnit{}
	var order []*batchUnit
	for i := range req.Entries {
		e := &req.Entries[i]
		opts, f, entryErr := s.resolveBatchEntry(e)
		if entryErr != nil {
			results[i] = BatchEntryResult{Error: entryErr}
			continue
		}
		names[i] = f.Name
		k := batchKey{
			fp:       f.Fingerprint(),
			digest:   opts.FullDigest(),
			simulate: e.Simulate,
			vliw:     e.VLIW,
			emitMIR:  e.EmitMIR,
			verify:   e.Verify,
			validate: e.Validate,
		}
		if u, ok := units[k]; ok {
			u.indices = append(u.indices, i)
			continue
		}
		u := &batchUnit{f: f, opts: opts, req: *e, indices: []int{i}}
		units[k] = u
		order = append(order, u)
	}
	deduped := 0
	for _, u := range order {
		deduped += len(u.indices) - 1
	}
	s.metrics.batchDeduped.Add(int64(deduped))

	// Fan the unique compiles over the admission slots. Workers block for a
	// slot under the batch deadline rather than going through admit(): a
	// batch never 429s per entry — entries the deadline kills answer 504 in
	// place, the rest still return their results.
	workers := s.cfg.MaxInFlight
	if workers > len(order) {
		workers = len(order)
	}
	next := make(chan *batchUnit)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range next {
				s.compileBatchUnit(ctx, u)
			}
		}()
	}
	for _, u := range order {
		next <- u
	}
	close(next)
	wg.Wait()

	ok := 0
	for _, u := range order {
		for _, i := range u.indices {
			results[i] = s.batchEntryResponse(u, req.Entries[i], names[i])
			if results[i].OK != nil {
				ok++
			}
		}
	}
	if ok > 0 {
		s.metrics.ok.Add(1)
	} else {
		s.metrics.compileErrors.Add(1)
	}
	wall := time.Since(total)
	s.metrics.phase("total").observe(wall)
	s.respond(w, http.StatusOK, BatchResponse{
		Results: results,
		Deduped: deduped,
		WallNS:  wall.Nanoseconds(),
	})
}

// resolveBatchEntry parses and validates one entry without compiling.
func (s *Server) resolveBatchEntry(e *CompileRequest) (core.Options, *ir.Func, *errorResponse) {
	opts, pmode, err := s.compileOptions(e)
	if err != nil {
		return core.Options{}, nil, &errorResponse{Error: err.Error(), Code: CodeBadRequest}
	}
	if pmode != "" {
		// Batch dedup keys entries by a single method's digest; racing has
		// none. Portfolio requests belong on the compile endpoints.
		return core.Options{}, nil, &errorResponse{
			Error: fmt.Sprintf("method %q is not valid in batch entries; use /v1/compile", pmode),
			Code:  CodeBadRequest,
		}
	}
	s.metrics.countMethod(methodLabel(e.Method))
	mod, err := parseSource(e.MIR)
	if err != nil {
		s.metrics.parseErrors.Add(1)
		return core.Options{}, nil, &errorResponse{Error: err.Error(), Code: CodeParse}
	}
	if len(mod.Funcs) != 1 {
		return core.Options{}, nil, &errorResponse{
			Error: fmt.Sprintf("%d functions in batch entry; each entry is one kernel", len(mod.Funcs)),
			Code:  CodeBadRequest,
		}
	}
	return opts, mod.SortedFuncs()[0], nil
}

// compileBatchUnit runs one unique compile (and optional simulation) inside
// an admission slot.
func (s *Server) compileBatchUnit(ctx context.Context, u *batchUnit) {
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		s.metrics.deadlines.Add(1)
		u.err = &errorResponse{Error: "batch deadline expired before compile", Code: CodeDeadline}
		return
	}
	defer func() { <-s.slots }()

	if s.spec != nil {
		s.spec.claimWarm(compilecache.Key{Fingerprint: u.f.Fingerprint(), Digest: u.opts.FullDigest()})
	}
	start := time.Now()
	res, err := core.CompileContext(ctx, u.f, u.opts)
	s.metrics.phase("compile").observe(time.Since(start))
	if err != nil {
		if isDeadline(err) {
			s.metrics.deadlines.Add(1)
			u.err = &errorResponse{Error: err.Error(), Code: CodeDeadline}
			return
		}
		s.metrics.compileErrors.Add(1)
		u.err = &errorResponse{Error: err.Error(), Code: CodeCompile}
		return
	}
	u.res = res
	if u.req.Simulate {
		simStart := time.Now()
		sr, serr := sim.Run(res.Func, sim.Options{File: u.opts.File, VLIW: u.req.VLIW})
		s.metrics.phase("simulate").observe(time.Since(simStart))
		if serr != nil {
			s.metrics.compileErrors.Add(1)
			u.res = nil
			u.err = &errorResponse{Error: serr.Error(), Code: CodeSimulate}
			return
		}
		u.sim = &SimJSON{
			Steps:             sr.Steps,
			Cycles:            sr.Cycles,
			DynamicConflicts:  sr.DynamicConflicts,
			ConflictInstances: sr.ConflictInstances,
			MemChecksum:       fmt.Sprintf("%016x", sr.MemChecksum),
		}
	}
}

// batchEntryResponse renders one entry's view of its (possibly shared)
// unit. Duplicates may carry different symbol names for the same
// fingerprint; the emitted MIR is rematerialized under the entry's name.
func (s *Server) batchEntryResponse(u *batchUnit, e CompileRequest, name string) BatchEntryResult {
	if u.err != nil {
		return BatchEntryResult{Error: u.err}
	}
	fr := &FuncResponse{
		Func:   name,
		Report: reportJSON(u.res.Report),
		Alloc:  allocJSON(u.res.Alloc),
		Sim:    u.sim,
	}
	if e.EmitMIR {
		fn := u.res.Func
		if fn.Name != name {
			fn = fn.Clone()
			fn.Name = name
		}
		fr.MIR = ir.Print(fn)
	}
	return BatchEntryResult{OK: fr}
}

// decodeBatchRequest reads the JSON batch envelope under the body cap.
func decodeBatchRequest(w http.ResponseWriter, r *http.Request, maxBody int64) (*BatchRequest, int, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds %d bytes", maxBody)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("reading body: %w", err)
	}
	req := &BatchRequest{}
	if err := json.Unmarshal(body, req); err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("request JSON: %w", err)
	}
	return req, 0, nil
}
