package server

import (
	"expvar"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count of the latency histograms: bucket
// i covers [2^(i-1), 2^i) microseconds (bucket 0 is sub-microsecond),
// reaching ~9 minutes at the top — far past any admissible deadline.
const histBuckets = 30

// hist is a lock-free log-spaced latency histogram.
type hist struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sumNS  atomic.Int64
	maxNS  atomic.Int64
}

func (h *hist) observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns / 1000))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.counts[b].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// quantile returns an upper-bound estimate (in ns) of the p-quantile: the
// top of the bucket where the cumulative count crosses p.
func (h *hist) quantile(p float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(p * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += h.counts[b].Load()
		if cum >= target {
			return (int64(1) << b) * 1000 // bucket upper bound in ns
		}
	}
	return h.maxNS.Load()
}

// HistJSON is the /statz rendering of one histogram.
type HistJSON struct {
	Count   int64   `json:"count"`
	MeanMS  float64 `json:"mean_ms"`
	P50MS   float64 `json:"p50_ms"`
	P90MS   float64 `json:"p90_ms"`
	P99MS   float64 `json:"p99_ms"`
	MaxMS   float64 `json:"max_ms"`
	Buckets []int64 `json:"buckets_us_pow2,omitempty"`
}

func (h *hist) snapshot() HistJSON {
	n := h.count.Load()
	out := HistJSON{
		Count: n,
		P50MS: float64(h.quantile(0.50)) / 1e6,
		P90MS: float64(h.quantile(0.90)) / 1e6,
		P99MS: float64(h.quantile(0.99)) / 1e6,
		MaxMS: float64(h.maxNS.Load()) / 1e6,
	}
	if n > 0 {
		out.MeanMS = float64(h.sumNS.Load()) / float64(n) / 1e6
		hi := 0
		buckets := make([]int64, histBuckets)
		for b := 0; b < histBuckets; b++ {
			buckets[b] = h.counts[b].Load()
			if buckets[b] > 0 {
				hi = b
			}
		}
		out.Buckets = buckets[:hi+1]
	}
	return out
}

// phaseNames are the fixed histogram keys of /statz.
var phaseNames = []string{"parse", "compile", "simulate", "total"}

// metrics is the daemon's counter set.
type metrics struct {
	start time.Time

	total, ok                  atomic.Int64
	parseErrors, compileErrors atomic.Int64
	rejected, deadlines        atomic.Int64

	// Incremental-recompile accounting: prior-token lookups and the
	// per-function reuse they produced.
	tokenHits, tokenMisses     atomic.Int64
	reusedFuncs, compiledFuncs atomic.Int64

	// Batch accounting: requests to /v1/compile/batch, entries across
	// them, and entries collapsed onto an identical sibling.
	batchRequests, batchEntries, batchDeduped atomic.Int64

	// Per-method accounting: requests by their method string (portfolio
	// modes included), plus racer win attribution and selector picks from
	// portfolio compiles — request-rate map updates, far off any hot path.
	// guards: methodRequests, racerWins, selectorPicks
	methodMu       sync.Mutex
	methodRequests map[string]int64
	racerWins      map[string]int64
	selectorPicks  int64

	phases map[string]*hist
}

// countMethod records one well-formed compile request for a method label.
func (m *metrics) countMethod(name string) {
	m.methodMu.Lock()
	m.methodRequests[name]++
	m.methodMu.Unlock()
}

// countRaceOutcome folds one portfolio module result into the win and
// selector-pick counters.
func (m *metrics) countRaceOutcome(wins map[string]int, selected int) {
	m.methodMu.Lock()
	for name, n := range wins {
		m.racerWins[name] += int64(n)
	}
	m.selectorPicks += int64(selected)
	m.methodMu.Unlock()
}

func newMetrics() *metrics {
	m := &metrics{
		start:          time.Now(),
		phases:         map[string]*hist{},
		methodRequests: map[string]int64{},
		racerWins:      map[string]int64{},
	}
	for _, n := range phaseNames {
		m.phases[n] = &hist{}
	}
	return m
}

func (m *metrics) phase(name string) *hist { return m.phases[name] }

// RequestCounts is the /statz request-outcome section.
type RequestCounts struct {
	Total         int64 `json:"total"`
	OK            int64 `json:"ok"`
	ParseErrors   int64 `json:"parse_errors"`
	CompileErrors int64 `json:"compile_errors"`
	Rejected      int64 `json:"rejected_429"`
	Deadlines     int64 `json:"deadline_504"`
}

// CacheStatz is the /statz in-memory cache section (compilecache.Stats
// plus derived rates and the configured cap). The full_* counters are the
// memory level only: a lookup served off disk still counts as a full-layer
// miss here, with the disk attribution in disk_hits/disk_misses and the
// store-side view in the top-level disk section. Cold compiles are
// full_misses with a matching disk_miss; memory hits never touch disk.
type CacheStatz struct {
	FullHits      int64   `json:"full_hits"`
	FullMisses    int64   `json:"full_misses"`
	FullHitRate   float64 `json:"full_hit_rate"`
	DiskHits      int64   `json:"disk_hits"`
	DiskMisses    int64   `json:"disk_misses"`
	DiskHitRate   float64 `json:"disk_hit_rate"`
	PrefixHits    int64   `json:"prefix_hits"`
	PrefixMisses  int64   `json:"prefix_misses"`
	PrefixHitRate float64 `json:"prefix_hit_rate"`
	AllocHits     int64   `json:"alloc_hits"`
	AllocMisses   int64   `json:"alloc_misses"`
	AllocHitRate  float64 `json:"alloc_hit_rate"`
	BytesRetained int64   `json:"bytes_retained"`
	MaxBytes      int64   `json:"max_bytes"`
	Evictions     int64   `json:"evictions"`
	FullEntries   int     `json:"full_entries"`
	PrefixEntries int     `json:"prefix_entries"`
	AllocEntries  int     `json:"alloc_entries"`
}

// DiskStatz is the /statz persistent-store section: the store's own view
// of the second cache level (absent when no disk cache is configured).
type DiskStatz struct {
	Dir string `json:"dir"`
	// Hits/Misses count store lookups (one per full-layer memory miss).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Puts/DroppedPuts count write-behind enqueues; drops happen only when
	// the writer queue is saturated (the entry just isn't persisted).
	Puts        int64 `json:"puts"`
	DroppedPuts int64 `json:"dropped_puts"`
	// Corrupt counts entries that failed checksum or framing validation
	// and were quarantined (each read as a miss, never an error).
	Corrupt int64 `json:"corrupt"`
	// Evictions counts files removed by the byte-cap sweep.
	Evictions   int64 `json:"evictions"`
	BytesStored int64 `json:"bytes_stored"`
	MaxBytes    int64 `json:"max_bytes"`
	Entries     int64 `json:"entries"`
}

// BatchStatz is the /statz batch-endpoint section.
type BatchStatz struct {
	Requests int64 `json:"requests"`
	Entries  int64 `json:"entries"`
	Deduped  int64 `json:"deduped"`
}

// MethodStatz is the /statz per-method section: request counts by method
// string (racing modes counted under "portfolio"/"auto"), racer win
// attribution per winning method, and the count of functions the auto-mode
// selector decided without racing.
type MethodStatz struct {
	Requests      map[string]int64 `json:"requests"`
	RacerWins     map[string]int64 `json:"racer_wins,omitempty"`
	SelectorPicks int64            `json:"selector_picks,omitempty"`
}

// IncrementalStatz is the /statz incremental-recompile section.
type IncrementalStatz struct {
	// TokensRetained is the current module-prior LRU population;
	// MaxTokens its cap.
	TokensRetained int `json:"tokens_retained"`
	MaxTokens      int `json:"max_tokens"`
	// TokenHits/TokenMisses count prior_token resolutions.
	TokenHits   int64 `json:"token_hits"`
	TokenMisses int64 `json:"token_misses"`
	// ReusedFuncs/CompiledFuncs sum the per-request attribution over all
	// module compiles.
	ReusedFuncs   int64 `json:"reused_funcs"`
	CompiledFuncs int64 `json:"compiled_funcs"`
}

// Statz is the full /statz document. The same value is published through
// expvar (see PublishExpvar), so external scrapers get one schema.
type Statz struct {
	UptimeS     float64             `json:"uptime_s"`
	Draining    bool                `json:"draining"`
	InFlight    int64               `json:"inflight"`
	Queued      int64               `json:"queued"`
	MaxInFlight int                 `json:"max_inflight"`
	MaxQueue    int                 `json:"max_queue"`
	Requests    RequestCounts       `json:"requests"`
	Methods     *MethodStatz        `json:"methods,omitempty"`
	Cache       CacheStatz          `json:"cache"`
	Disk        *DiskStatz          `json:"disk,omitempty"`
	Batch       BatchStatz          `json:"batch"`
	Incremental *IncrementalStatz   `json:"incremental,omitempty"`
	Speculation *SpecStatz          `json:"speculation,omitempty"`
	Phases      map[string]HistJSON `json:"phases"`
}

// Statz snapshots every counter.
func (s *Server) Statz() Statz {
	cs := s.cache.Stats()
	out := Statz{
		UptimeS:     time.Since(s.metrics.start).Seconds(),
		Draining:    s.draining.Load(),
		InFlight:    int64(len(s.slots)),
		Queued:      s.queued.Load(),
		MaxInFlight: s.cfg.MaxInFlight,
		MaxQueue:    s.cfg.MaxQueue,
		Requests: RequestCounts{
			Total:         s.metrics.total.Load(),
			OK:            s.metrics.ok.Load(),
			ParseErrors:   s.metrics.parseErrors.Load(),
			CompileErrors: s.metrics.compileErrors.Load(),
			Rejected:      s.metrics.rejected.Load(),
			Deadlines:     s.metrics.deadlines.Load(),
		},
		Cache: CacheStatz{
			FullHits:      cs.FullHits,
			FullMisses:    cs.FullMisses,
			FullHitRate:   cs.FullHitRate(),
			DiskHits:      cs.DiskHits,
			DiskMisses:    cs.DiskMisses,
			DiskHitRate:   cs.DiskHitRate(),
			PrefixHits:    cs.PrefixHits,
			PrefixMisses:  cs.PrefixMisses,
			PrefixHitRate: cs.PrefixHitRate(),
			AllocHits:     cs.AllocHits,
			AllocMisses:   cs.AllocMisses,
			AllocHitRate:  cs.AllocHitRate(),
			BytesRetained: cs.BytesRetained,
			MaxBytes:      s.cache.MaxBytes(),
			Evictions:     cs.Evictions,
			FullEntries:   cs.FullEntries,
			PrefixEntries: cs.PrefixEntries,
			AllocEntries:  cs.AllocEntries,
		},
		Batch: BatchStatz{
			Requests: s.metrics.batchRequests.Load(),
			Entries:  s.metrics.batchEntries.Load(),
			Deduped:  s.metrics.batchDeduped.Load(),
		},
		Phases: map[string]HistJSON{},
	}
	s.metrics.methodMu.Lock()
	if len(s.metrics.methodRequests) > 0 {
		ms := &MethodStatz{
			Requests:      make(map[string]int64, len(s.metrics.methodRequests)),
			SelectorPicks: s.metrics.selectorPicks,
		}
		for k, v := range s.metrics.methodRequests {
			ms.Requests[k] = v
		}
		if len(s.metrics.racerWins) > 0 {
			ms.RacerWins = make(map[string]int64, len(s.metrics.racerWins))
			for k, v := range s.metrics.racerWins {
				ms.RacerWins[k] = v
			}
		}
		out.Methods = ms
	}
	s.metrics.methodMu.Unlock()
	if s.disk != nil {
		ds := s.disk.Stats()
		out.Disk = &DiskStatz{
			Dir:         s.disk.Dir(),
			Hits:        ds.Hits,
			Misses:      ds.Misses,
			Puts:        ds.Puts,
			DroppedPuts: ds.DroppedPuts,
			Corrupt:     ds.Corrupt,
			Evictions:   ds.Evictions,
			BytesStored: ds.BytesStored,
			MaxBytes:    s.disk.MaxBytes(),
			Entries:     ds.Entries,
		}
	}
	if s.tokens != nil {
		out.Incremental = &IncrementalStatz{
			TokensRetained: s.tokens.Len(),
			MaxTokens:      s.cfg.ModuleTokens,
			TokenHits:      s.metrics.tokenHits.Load(),
			TokenMisses:    s.metrics.tokenMisses.Load(),
			ReusedFuncs:    s.metrics.reusedFuncs.Load(),
			CompiledFuncs:  s.metrics.compiledFuncs.Load(),
		}
	}
	if s.spec != nil {
		st := s.spec.statz(s.cfg.SpecWorkers)
		out.Speculation = &st
	}
	for _, n := range phaseNames {
		out.Phases[n] = s.metrics.phases[n].snapshot()
	}
	return out
}

var expvarOnce sync.Once

// PublishExpvar exposes the server's Statz under the given expvar name
// (also reachable at /debug/vars when the daemon mounts expvar.Handler()).
// Only the first call across the process wins — expvar registration is
// global and permanent, so tests creating many servers must not call this.
func (s *Server) PublishExpvar(name string) {
	expvarOnce.Do(func() {
		expvar.Publish(name, expvar.Func(func() any { return s.Statz() }))
	})
}
