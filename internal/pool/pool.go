// Package pool provides the bounded worker pool shared by the parallel
// module compile (internal/core) and the experiment sweeps
// (internal/experiments): errgroup-style first-error-wins semantics with
// context cancellation, built on the standard library only.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Run executes fn(ctx, i) for every i in [0, n) on at most workers
// goroutines. workers <= 0 selects runtime.GOMAXPROCS(0); the effective
// count never exceeds n. Indexes are handed out in order through a shared
// counter, so small inputs keep their cache-friendly sequencing.
//
// The first error returned by fn cancels the shared context and wins: Run
// returns it after every in-flight call has drained, and indexes not yet
// started are skipped. Cancelling the parent context has the same
// draining behaviour and surfaces ctx.Err().
//
// With one worker (or one item) Run degenerates to a plain loop with no
// goroutines, so serial baselines measure pure per-item cost.
func Run(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		next     int64
		once     sync.Once
		firstErr error
	)
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if err := fn(ctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
