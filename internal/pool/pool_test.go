package pool

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 100
		var visits [n]int32
		err := Run(context.Background(), n, workers, func(_ context.Context, i int) error {
			atomic.AddInt32(&visits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers, n = 4, 200
	var cur, peak int32
	err := Run(context.Background(), n, workers, func(_ context.Context, i int) error {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		atomic.AddInt32(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent calls, bound is %d", peak, workers)
	}
}

func TestRunFirstErrorWinsAndCancels(t *testing.T) {
	boom := errors.New("boom")
	var after int32
	err := Run(context.Background(), 1000, 4, func(ctx context.Context, i int) error {
		if i == 5 {
			return boom
		}
		if ctx.Err() != nil {
			atomic.AddInt32(&after, 1) // cancellation visible to in-flight calls
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestRunSerialStopsAtFirstError(t *testing.T) {
	var calls int32
	err := Run(context.Background(), 10, 1, func(_ context.Context, i int) error {
		atomic.AddInt32(&calls, 1)
		if i == 3 {
			return fmt.Errorf("fail at %d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if calls != 4 {
		t.Fatalf("serial run made %d calls after error at index 3, want 4", calls)
	}
}

func TestRunHonorsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls int32
	err := Run(ctx, 10, 2, func(_ context.Context, i int) error {
		atomic.AddInt32(&calls, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunEmpty(t *testing.T) {
	if err := Run(context.Background(), 0, 4, func(_ context.Context, i int) error {
		t.Fatal("fn called for empty input")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
