package prescount_test

import (
	"fmt"

	"prescount"
)

// Example demonstrates the minimal compile loop: build a kernel, run the
// PresCount pipeline, inspect the conflict report.
func Example() {
	b := prescount.NewBuilder("axpy")
	base := b.IConst(0)
	x := b.FLoad(base, 0)
	y := b.FLoad(base, 1)
	s := b.FAdd(x, y)
	b.FStore(s, base, 2)
	b.Ret()

	res, err := prescount.Compile(b.Func(), prescount.Options{
		File:   prescount.RV2(2),
		Method: prescount.MethodBPC,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("conflict-relevant:", res.Report.ConflictRelevant)
	fmt.Println("static conflicts:", res.Report.StaticConflicts)
	// Output:
	// conflict-relevant: 1
	// static conflicts: 0
}

// ExampleParse shows the textual MIR round trip.
func ExampleParse() {
	src := `func @tiny {
  entry:
    f2 = fadd f0, f1
    ret
}`
	f, err := prescount.Parse(src)
	if err != nil {
		panic(err)
	}
	r := prescount.Analyze(f, prescount.RV2(2))
	fmt.Println("conflicts:", r.StaticConflicts) // f0 and f1 sit in different banks
	// Output:
	// conflicts: 0
}

// ExampleSimulate executes allocated code and reads back memory.
func ExampleSimulate() {
	b := prescount.NewBuilder("store7")
	base := b.IConst(0)
	v := b.FConst(7)
	b.FStore(v, base, 3)
	b.Ret()

	res, err := prescount.Compile(b.Func(), prescount.Options{
		File:   prescount.RV2(2),
		Method: prescount.MethodNon,
	})
	if err != nil {
		panic(err)
	}
	sr, err := prescount.Simulate(res.Func, prescount.SimOptions{
		File:    prescount.RV2(2),
		MemSize: 16,
		KeepMem: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("mem[3] =", sr.Mem[3])
	// Output:
	// mem[3] = 7
}

// ExampleRegisterFile shows the DSA bank-subgroup numbering of Figure 6.
func ExampleRegisterFile() {
	dsa := prescount.DSA(1024)
	for _, r := range []int{1, 5, 9, 10, 13} {
		fmt.Printf("vr%d: bank %d, subgroup %d\n", r, dsa.Bank(r), dsa.Subgroup(r))
	}
	// Output:
	// vr1: bank 0, subgroup 1
	// vr5: bank 1, subgroup 1
	// vr9: bank 0, subgroup 1
	// vr10: bank 0, subgroup 2
	// vr13: bank 1, subgroup 1
}
